(** The [tea_client] side: ship a PC-trace to a {!Server} and collect the
    session profile it replies with. *)

exception Server_error of string
(** The server answered with an error frame (corrupt trace, bad framing);
    carries the server's message. *)

val replay_string :
  ?retries:int ->
  ?backoff:float ->
  ?chunk:int ->
  Frame.addr ->
  string ->
  Tea_parallel.Profile.t
(** Stream raw trace bytes as data frames of at most [chunk] bytes
    (default 65536; small values deliberately split records across
    frames), send end-of-stream, and block for the profile reply.
    [retries] (default 0) retries the {e connect} up to that many times
    on [ECONNREFUSED]/[EAGAIN]/[ENOENT] — the errors a client racing
    daemon startup sees — sleeping [backoff] seconds (default 0.05)
    before the first retry and doubling each time; errors after the
    connection is up never retry.
    @raise Server_error on an error reply.
    @raise Frame.Corrupt on a malformed reply.
    @raise Unix.Unix_error when the server stays unreachable past the
    retry budget or drops the connection.
    @raise Invalid_argument when [retries < 0] or [backoff <= 0]. *)

val replay :
  ?retries:int ->
  ?backoff:float ->
  ?chunk:int ->
  Frame.addr ->
  string ->
  Tea_parallel.Profile.t
(** {!replay_string} of {!Tea_core.Pc_trace.read_all} of a path (["-"]
    streams standard input — the trace never touches the local disk). *)

val scrape : ?retries:int -> ?backoff:float -> Frame.addr -> string
(** Ask a running server for one metrics exposition
    ({!Frame.tag_scrape} as the first and only frame) and return the
    Prometheus-style text it replies with. Scrapes are pure observers:
    the connection never counts as a session and bumps no metric, so
    the returned text is unperturbed by the scrape itself.
    @raise Server_error on an error reply.
    @raise Frame.Corrupt on a malformed reply.
    @raise Unix.Unix_error when the server is unreachable. *)

val abort : bytes_sent:int -> Frame.addr -> string -> unit
(** Adversarial client: send only the first [bytes_sent] bytes of the
    file's trace stream, then close without an end-of-stream frame — a
    mid-stream disconnect. The server must drop the session without
    perturbing any other. *)
