(* Unboxed per-session event queue.

   The drain cycle is the daemon's hot loop: every decoded trace event
   crosses it exactly once, on a pool worker. A [(int * Pc_trace.event)
   Queue.t] makes that crossing expensive out of proportion to the
   replay work itself — each event costs a queue cell, a tuple and a
   constructor block, all allocated on the driver thread and chased as
   scattered minor/major-heap pointers by whichever worker domain drains
   the session. At packed-engine speeds (~2-5 ns/block) the pointer
   chasing dominates the drain window.

   Instead, events are flattened at enqueue time into stride-4 int
   records [tag; asid; a; b] in one growable power-of-two ring: the
   driver writes fields, the worker streams them back out of a dense
   array — no allocation after the ring warms up, no pointer chasing,
   and the common Block case never rebuilds an event value (see
   {!Tea_core.Multi_replayer.feeder_block}). *)

type t = {
  mutable buf : int array;  (* cap * 4 ints, stride-4 records *)
  mutable cap : int;  (* records; always a power of two *)
  mutable head : int;  (* record index of the next pop; < cap *)
  mutable len : int;  (* live records *)
}

let tag_block = 0
let tag_switch = 1
let tag_invalidate = 2
let tag_interrupt = 3

let create () = { buf = Array.make (256 * 4) 0; cap = 256; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

(* doubling copy, unwrapping the ring so [head] restarts at 0 *)
let grow t =
  let cap' = t.cap * 2 in
  let buf' = Array.make (cap' * 4) 0 in
  for i = 0 to t.len - 1 do
    Array.blit t.buf ((t.head + i) land (t.cap - 1) * 4) buf' (i * 4) 4
  done;
  t.buf <- buf';
  t.cap <- cap';
  t.head <- 0

let push_raw t tag asid a b =
  if t.len = t.cap then grow t;
  let i = (t.head + t.len) land (t.cap - 1) * 4 in
  t.buf.(i) <- tag;
  t.buf.(i + 1) <- asid;
  t.buf.(i + 2) <- a;
  t.buf.(i + 3) <- b;
  t.len <- t.len + 1

let push t ~asid (ev : Tea_core.Pc_trace.event) =
  match ev with
  | Block { start; insns } -> push_raw t tag_block asid start insns
  | Switch { asid = a } -> push_raw t tag_switch asid a 0
  | Invalidate { asid = a } -> push_raw t tag_invalidate asid a 0
  | Interrupt -> push_raw t tag_interrupt asid 0 0

let tag t = t.buf.(t.head * 4)
let asid t = t.buf.((t.head * 4) + 1)
let f1 t = t.buf.((t.head * 4) + 2)
let f2 t = t.buf.((t.head * 4) + 3)

let drop t =
  t.head <- (t.head + 1) land (t.cap - 1);
  t.len <- t.len - 1
