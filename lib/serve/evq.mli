(** Unboxed per-session event queue for the daemon's drain cycle.

    A FIFO of {!Tea_core.Pc_trace.event}s flattened into stride-4 int
    records in one growable ring — the driver thread enqueues fields,
    a pool worker streams them back out of a dense array. No queue
    cells, no tuples, no constructor blocks: at packed-engine replay
    speeds the pointer chasing of a [Queue.t] of boxed events is what
    dominated the drain window, and this removes it. Single-producer /
    single-consumer is guaranteed externally (the bulk-synchronous
    drive loop never reads a session's socket while a worker drains its
    queue), so no synchronisation is needed here. *)

type t

val create : unit -> t
(** An empty queue (256-record initial ring, doubling as needed). *)

val length : t -> int
(** Queued events — the backpressure gauge. *)

val is_empty : t -> bool

val push : t -> asid:int -> Tea_core.Pc_trace.event -> unit
(** Append one event for [asid]. *)

(** {2 Head-record accessors}

    Valid only when [not (is_empty t)]; {!drop} consumes the record.
    The consumer branches on {!tag} and reads the operand fields —
    nothing is ever re-boxed into an event value. *)

val tag_block : int
val tag_switch : int
val tag_invalidate : int
val tag_interrupt : int

val tag : t -> int

val asid : t -> int
(** The asid the event was enqueued under. *)

val f1 : t -> int
(** [Block]: the start PC. [Switch]/[Invalidate]: the target asid. *)

val f2 : t -> int
(** [Block]: the instruction count; 0 otherwise. *)

val drop : t -> unit
(** Consume the head record. *)
