exception Corrupt of string

let max_payload = 1 lsl 24

let tag_data = 'D'

let tag_end = 'E'

let tag_profile = 'P'

let tag_error = 'X'

let tag_scrape = 'S'

let tag_metrics = 'M'

let header_len = 5

type frame = { tag : char; payload : string }

let encode tag payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 tag;
  Bytes.set b 1 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 4 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* ---- incremental parsing ----

   Same shape as the Pc_trace streaming decoder: buffer the undecoded
   suffix, yield every complete frame, keep the partial tail. *)

type parser_ = { mutable buf : Bytes.t; mutable len : int; mutable pos : int }

let parser_ () = { buf = Bytes.create 4096; len = 0; pos = 0 }

let parser_pending p = p.len - p.pos

let parser_append p s off len =
  if p.pos > 0 then begin
    Bytes.blit p.buf p.pos p.buf 0 (p.len - p.pos);
    p.len <- p.len - p.pos;
    p.pos <- 0
  end;
  let need = p.len + len in
  if need > Bytes.length p.buf then begin
    let cap = ref (2 * Bytes.length p.buf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let nb = Bytes.create !cap in
    Bytes.blit p.buf 0 nb 0 p.len;
    p.buf <- nb
  end;
  Bytes.blit_string s off p.buf p.len len;
  p.len <- need

let payload_len_at buf pos =
  let b i = Char.code (Bytes.get buf (pos + i)) in
  (b 1 lsl 24) lor (b 2 lsl 16) lor (b 3 lsl 8) lor b 4

let parser_feed p ?(off = 0) ?len s emit =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Frame.parser_feed: bad substring";
  parser_append p s off len;
  let continue = ref true in
  while !continue do
    if p.len - p.pos < header_len then continue := false
    else begin
      let n = payload_len_at p.buf p.pos in
      if n > max_payload then raise (Corrupt "frame payload too large");
      if p.len - p.pos < header_len + n then continue := false
      else begin
        let tag = Bytes.get p.buf p.pos in
        let payload = Bytes.sub_string p.buf (p.pos + header_len) n in
        p.pos <- p.pos + header_len + n;
        emit { tag; payload }
      end
    end
  done

(* ---- blocking fd helpers ---- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = Unix.write fd b !off (n - !off) in
    off := !off + k
  done

let send fd tag payload = write_all fd (encode tag payload)

let read_exact fd b off len =
  (* false on EOF before [len] bytes *)
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let k = Unix.read fd b (off + !got) (len - !got) in
    if k = 0 then eof := true else got := !got + k
  done;
  !got = len

let recv fd =
  let hdr = Bytes.create header_len in
  let k = Unix.read fd hdr 0 header_len in
  if k = 0 then None
  else begin
    let rest = header_len - k in
    if rest > 0 && not (read_exact fd hdr k rest) then
      raise (Corrupt "truncated frame header");
    let n = payload_len_at hdr 0 in
    if n > max_payload then raise (Corrupt "frame payload too large");
    let payload = Bytes.create n in
    if not (read_exact fd payload 0 n) then
      raise (Corrupt "truncated frame payload");
    Some { tag = Bytes.get hdr 0; payload = Bytes.unsafe_to_string payload }
  end

(* ---- profile payloads ----

   Plain varints over the snapshot's integer totals (every field is a
   non-negative count). Not Marshal: the payload crosses a socket, so it
   must be stable across client/server builds and bounded on decode. *)

let put_varint b v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char b (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char b (Char.chr !v)

let get_varint s pos =
  let len = String.length s in
  let rec go shift acc =
    if !pos >= len then raise (Corrupt "truncated profile varint");
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift > 56 then raise (Corrupt "profile varint too long")
    else go (shift + 7) acc
  in
  go 0 0

let encode_profile (p : Tea_parallel.Profile.t) =
  let b = Buffer.create 256 in
  put_varint b (List.length p.counts);
  List.iter
    (fun (state, n) ->
      put_varint b state;
      put_varint b n)
    p.counts;
  put_varint b p.covered;
  put_varint b p.total;
  put_varint b p.enters;
  put_varint b p.exits;
  put_varint b p.steps;
  put_varint b p.in_trace_hits;
  put_varint b p.cache_hits;
  put_varint b p.global_hits;
  put_varint b p.global_misses;
  put_varint b p.cycles;
  Buffer.contents b

let decode_profile s =
  let pos = ref 0 in
  let n_counts = get_varint s pos in
  if n_counts < 0 || n_counts > max_payload then
    raise (Corrupt "bad profile counts length");
  let counts =
    List.init n_counts (fun _ ->
        let state = get_varint s pos in
        let n = get_varint s pos in
        (state, n))
  in
  let covered = get_varint s pos in
  let total = get_varint s pos in
  let enters = get_varint s pos in
  let exits = get_varint s pos in
  let steps = get_varint s pos in
  let in_trace_hits = get_varint s pos in
  let cache_hits = get_varint s pos in
  let global_hits = get_varint s pos in
  let global_misses = get_varint s pos in
  let cycles = get_varint s pos in
  if !pos <> String.length s then raise (Corrupt "trailing profile bytes");
  {
    Tea_parallel.Profile.counts;
    covered;
    total;
    enters;
    exits;
    steps;
    in_trace_hits;
    cache_hits;
    global_hits;
    global_misses;
    cycles;
  }

(* ---- addresses ---- *)

type addr = Unix_sock of string | Tcp of string * int

let pp_addr = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of_addr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              failwith (Printf.sprintf "cannot resolve host %S" host)
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (ip, port)

let domain_of_addr = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let connect addr =
  let fd = Unix.socket (domain_of_addr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of_addr addr)
   with e ->
     Unix.close fd;
     raise e);
  fd
