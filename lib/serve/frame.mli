(** The replay-as-a-service wire protocol.

    A session is one byte stream per direction, framed as

    {v tag (1 byte) | payload length (4 bytes, big-endian) | payload v}

    Client to server: any number of [tag_data] frames whose concatenated
    payloads are the raw bytes of one {!Tea_core.Pc_trace} file (any
    format; frames may split the stream anywhere, including mid-varint —
    the server decodes incrementally), then one empty [tag_end] frame.
    Server to client: a single [tag_profile] frame carrying the session's
    replay profile, or a [tag_error] frame with a human-readable message.

    Like the trace codec, framing is transport-agnostic: an incremental
    {!parser} consumes arbitrary byte chunks and yields complete frames,
    so the same code runs over Unix sockets, TCP, or in-memory tests. *)

exception Corrupt of string
(** Malformed framing (oversized or negative length, unknown tag at the
    parser, truncated profile payload). *)

val max_payload : int
(** Upper bound a parser accepts for one frame's payload (16 MiB) — a
    hostile length prefix must not become an allocation. *)

val tag_data : char
val tag_end : char
val tag_profile : char
val tag_error : char

val tag_scrape : char
(** Client to server, as the {e first} frame of a connection (empty
    payload): ask for one metrics exposition instead of replaying. The
    server answers with a single [tag_metrics] frame and the connection
    is done. Scrape connections are observers — they never count as
    sessions, perturb no fleet state, and bump no metrics, so a scrape's
    own traffic can never show up in what it scrapes. *)

val tag_metrics : char
(** Server to client: the Prometheus-style text exposition
    ({!Tea_observe.Exposition}) of the daemon's live metrics, dispatch
    tiers and drift gauge. *)

type frame = { tag : char; payload : string }

val encode : char -> string -> string
(** One whole frame as bytes.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

(** {2 Incremental parsing} *)

type parser_

val parser_ : unit -> parser_

val parser_feed : parser_ -> ?off:int -> ?len:int -> string -> (frame -> unit) -> unit
(** Consume a chunk, calling back once per completed frame; partial
    frames are buffered until a later feed completes them.
    @raise Corrupt on a malformed header. *)

val parser_pending : parser_ -> int
(** Buffered bytes of an incomplete frame ([0] at a frame boundary). *)

(** {2 Blocking fd helpers (client side and server replies)} *)

val send : Unix.file_descr -> char -> string -> unit
(** Write one whole frame, looping over short writes.
    @raise Unix.Unix_error (e.g. [EPIPE]) on a dead peer. *)

val recv : Unix.file_descr -> frame option
(** Read one whole frame from a blocking fd; [None] on clean EOF at a
    frame boundary. @raise Corrupt on a malformed or truncated frame. *)

(** {2 Profile payloads} *)

val encode_profile : Tea_parallel.Profile.t -> string
(** Varint serialization of a full profile snapshot — every observable
    the replayer accumulates, so the client can verify its session
    against an offline replay bit-for-bit. *)

val decode_profile : string -> Tea_parallel.Profile.t
(** @raise Corrupt on truncated or trailing bytes. *)

(** {2 Addresses} *)

type addr =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

val pp_addr : addr -> string

val sockaddr_of_addr : addr -> Unix.sockaddr
(** @raise Failure when a TCP host does not resolve. *)

val connect : addr -> Unix.file_descr
(** A connected blocking stream socket. @raise Unix.Unix_error. *)
