module Core = Tea_core
module P = Tea_parallel
module Metrics = Tea_telemetry.Metrics

(* One connected client. The driver owns [fd]/[parser_]/[dec] and pushes
   decoded events onto [queue]; a pool worker drains [queue] into [multi]
   during a bulk-synchronous map cycle (the driver is blocked inside
   [Pool.map] for the whole cycle, so queue and replayer are never touched
   from two threads at once — the pool's mutex orders cycle N's worker
   against cycle N+1's). *)
type session = {
  id : int;  (* 1-based accept order, for the event log *)
  fd : Unix.file_descr;
  parser_ : Frame.parser_;
  dec : Core.Pc_trace.decoder;
  multi : Core.Multi_replayer.t;
  fdr : Core.Multi_replayer.feeder;  (* batches drain-cycle events *)
  queue : (int * Core.Pc_trace.event) Queue.t;
  raw : Buffer.t option;  (* retained bytes for the offline differential *)
  mutable ended : bool;  (* end-of-stream frame received *)
  mutable failed : string option;  (* first fatal error; session is dropped *)
  mutable scrape : bool;  (* a metrics observer, not a replay session *)
  mutable counted : bool;  (* bumped serve.sessions_accepted yet? *)
  mutable opened : bool;  (* session_open event emitted yet? *)
  mutable stalled : bool;  (* currently deselected by backpressure *)
  mutable bytes_in : int;
  mutable blocks : int;
  mutable busy_ns : int;  (* wall time inside drain tasks *)
}

type t = {
  image : Core.Packed.t;
  engine : [ `Packed | `Compiled ];
  pool : P.Pool.t;
  queue_cap : int;
  offline_check : bool;
  listen_fd : Unix.file_descr;
  bound : Frame.addr;
  unix_path : string option;
  stop_r : Unix.file_descr;  (* self-pipe: [stop] wakes a blocking select *)
  stop_w : Unix.file_descr;
  reg : Metrics.t;  (* driver-only; workers account into session fields *)
  events : Tea_observe.Events.t option;  (* None = no-op event log *)
  drift : Tea_observe.Drift.t option;  (* None = no drift monitor *)
  mutable drift_over : bool;  (* above threshold at last measurement? *)
  mutable sessions : session list;
  mutable next_id : int;  (* monotonic session ids for the event log *)
  mutable accepted : int;
  mutable completed_n : int;
  mutable disconnected_n : int;
  fleet_m : Mutex.t;
  mutable fleet : P.Profile.t;
  mutable retained : string list;  (* completed streams, newest first *)
  mutable closed : bool;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Per-asid replayer factory for a session's demuxed replay. Every
   session (and the offline re-check) dups the shared image, so
   compiled images — single-domain by construction — are never shared
   across sessions or workers. *)
let session_factory t _asid =
  let img = Core.Packed.dup t.image in
  match t.engine with
  | `Packed -> Core.Replayer.create_packed img
  | `Compiled -> Core.Replayer.create_compiled (Core.Compiled.of_packed img)

let create ?(queue_cap = 16384) ?(offline_check = false) ?(engine = `Packed)
    ?events ?drift ~jobs ~image addr =
  if queue_cap < 1 then invalid_arg "Server.create: queue_cap must be >= 1";
  (* a dead client mid-write must be an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let unix_path =
    match addr with Frame.Unix_sock p -> Some p | Frame.Tcp _ -> None
  in
  (match unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  let dom =
    match addr with
    | Frame.Unix_sock _ -> Unix.PF_UNIX
    | Frame.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Frame.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
     | Frame.Unix_sock _ -> ());
     Unix.bind listen_fd (Frame.sockaddr_of_addr addr);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound =
    match addr with
    | Frame.Tcp (host, _) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Frame.Tcp (host, port)
        | _ -> addr)
    | a -> a
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    image;
    engine;
    pool = P.Pool.create ~jobs;
    queue_cap;
    offline_check;
    listen_fd;
    bound;
    unix_path;
    stop_r;
    stop_w;
    reg = Metrics.create ();
    events;
    drift;
    drift_over = false;
    sessions = [];
    next_id = 0;
    accepted = 0;
    completed_n = 0;
    disconnected_n = 0;
    fleet_m = Mutex.create ();
    fleet = P.Profile.empty;
    retained = [];
    closed = false;
  }

let addr t = t.bound

(* ---- observability (driver thread) ---- *)

let fleet_profile t =
  Mutex.lock t.fleet_m;
  let p = t.fleet in
  Mutex.unlock t.fleet_m;
  p

let metrics t =
  Metrics.merge (Metrics.snapshot t.reg) (P.Pool.metrics_snapshot t.pool)

let drift_distance t =
  match t.drift with
  | None -> None
  | Some d ->
      let fleet = fleet_profile t in
      Some
        ( Tea_observe.Drift.measure d fleet.P.Profile.counts,
          Tea_observe.Drift.threshold d )

(* The scrape answer, also readable after [run] returns. Reads only
   driver-owned or mutex/merge-protected state (registry, pool snapshot,
   the global tier snapshot, the fleet), so rendering between drain
   cycles never pauses ingestion. Deterministic: a function of the
   snapshots alone, so the post-run scrape text equals this rendered
   after shutdown byte-for-byte. *)
let exposition t =
  Tea_observe.Exposition.render
    ~tiers:(Core.Tierstat.snapshot ())
    ~translate:(fun st -> Core.Packed.orig_state t.image st)
    ?drift:(drift_distance t) (metrics t)

let emit_ev t kind fields =
  match t.events with
  | None -> ()
  | Some e -> Tea_observe.Events.emit e kind fields

(* Re-measure drift against the fleet and event the threshold crossing
   (upward edge only; dropping back below re-arms it). The crossing
   event depends on completion order, so it lives in the event log only
   — the exposition gauge is a pure function of the final fleet. *)
let drift_check t =
  match t.drift with
  | None -> ()
  | Some d ->
      let dist =
        Tea_observe.Drift.measure d (fleet_profile t).P.Profile.counts
      in
      if Tea_observe.Drift.exceeded d dist then begin
        if not t.drift_over then
          emit_ev t "drift_threshold"
            [
              ("distance", Tea_observe.Events.F dist);
              ("threshold", Tea_observe.Events.F (Tea_observe.Drift.threshold d));
            ];
        t.drift_over <- true
      end
      else t.drift_over <- false

(* ---- ingestion (driver thread) ---- *)

let fail_session s msg = if s.failed = None then s.failed <- Some msg

(* Deferred accounting: a connection only counts as an accepted session
   once its first frame proves it is one. Scrape connections are pure
   observers — they bump no counter and emit no event, so a scrape can
   never perturb the exposition it returns (post-run scrape text ==
   offline exposition is a hard test). *)
let count_session t s =
  if not s.counted then begin
    s.counted <- true;
    Metrics.count t.reg "serve.sessions_accepted" 1
  end

let on_frame t s (f : Frame.frame) =
  if s.scrape then () (* observer: ignore anything after the scrape ask *)
  else if f.Frame.tag = Frame.tag_scrape && s.bytes_in = 0 && not s.ended
  then begin
    s.scrape <- true;
    try Frame.send s.fd Frame.tag_metrics (exposition t)
    with Unix.Unix_error _ | Sys_error _ -> ()
  end
  else begin
    count_session t s;
    Metrics.count t.reg "serve.frames" 1;
    if s.ended then fail_session s "frame after end-of-stream"
    else if f.Frame.tag = Frame.tag_data then begin
      if not s.opened then begin
        s.opened <- true;
        emit_ev t "session_open" [ ("session", Tea_observe.Events.I s.id) ]
      end;
      let n = String.length f.payload in
      s.bytes_in <- s.bytes_in + n;
      Metrics.count t.reg "serve.bytes_in" n;
      (match s.raw with
      | Some b -> Buffer.add_string b f.payload
      | None -> ());
      Core.Pc_trace.decoder_feed s.dec f.payload (fun ~asid ev ->
          Queue.push (asid, ev) s.queue)
    end
    else if f.Frame.tag = Frame.tag_end then s.ended <- true
    else fail_session s (Printf.sprintf "unexpected frame tag %C" f.Frame.tag)
  end

let read_session t chunk s =
  match Unix.read s.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      fail_session s "connection reset"
  | 0 -> if not s.ended then fail_session s "eof before end-of-stream"
  | k -> (
      try Frame.parser_feed s.parser_ (Bytes.sub_string chunk 0 k) (on_frame t s)
      with
      | Frame.Corrupt msg -> fail_session s ("bad framing: " ^ msg)
      | Core.Pc_trace.Corrupt msg -> fail_session s ("corrupt trace: " ^ msg))

let accept_limit_reached t until_sessions =
  match until_sessions with Some n -> t.accepted >= n | None -> false

let rec accept_all t until_sessions =
  if not (accept_limit_reached t until_sessions) then
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        accept_all t until_sessions
    | fd, _ ->
        t.accepted <- t.accepted + 1;
        t.next_id <- t.next_id + 1;
        let multi = Core.Multi_replayer.create (session_factory t) in
        let s =
          {
            id = t.next_id;
            fd;
            parser_ = Frame.parser_ ();
            dec = Core.Pc_trace.decoder ();
            multi;
            fdr = Core.Multi_replayer.feeder multi;
            queue = Queue.create ();
            raw =
              (if t.offline_check then Some (Buffer.create 4096) else None);
            ended = false;
            failed = None;
            scrape = false;
            counted = false;
            opened = false;
            stalled = false;
            bytes_in = 0;
            blocks = 0;
            busy_ns = 0;
          }
        in
        t.sessions <- t.sessions @ [ s ];
        accept_all t until_sessions

(* ---- replay (pool workers, bulk-synchronous) ---- *)

let drain_cycle t =
  let ready =
    List.filter (fun s -> s.failed = None && not (Queue.is_empty s.queue))
      t.sessions
  in
  if ready <> [] then begin
    let arr = Array.of_list ready in
    Array.iter
      (fun s ->
        Metrics.observe_value t.reg "serve.queue_depth" (Queue.length s.queue))
      arr;
    ignore
      (P.Pool.map t.pool
         ~f:(fun i ->
           let s = arr.(i) in
           let t0 = now_ns () in
           let n = ref 0 in
           (* The feeder batches consecutive same-asid blocks through
              Replayer.feed_run — the same engine loops (and the same
              dispatch-tier attribution) offline replay takes — and is
              flushed before the task ends, so a completed session's
              profile is always fully materialized. *)
           (try
              while not (Queue.is_empty s.queue) do
                let asid, ev = Queue.pop s.queue in
                Core.Multi_replayer.feeder_feed s.fdr ~asid ev;
                match ev with
                | Core.Pc_trace.Block _ -> incr n
                | _ -> ()
              done;
              Core.Multi_replayer.feeder_flush s.fdr
            with e ->
              s.failed <- Some ("replay error: " ^ Printexc.to_string e));
           P.Pool.add_units t.pool !n;
           s.blocks <- s.blocks + !n;
           s.busy_ns <- s.busy_ns + (now_ns () - t0))
         (Array.length arr))
  end

(* ---- completion / disconnect (driver thread) ---- *)

let drop t s msg =
  (* a connection that died before any frame still counts: it was a
     (failed) session, not a scrape *)
  count_session t s;
  (try Frame.send s.fd Frame.tag_error msg
   with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  t.disconnected_n <- t.disconnected_n + 1;
  Metrics.count t.reg "serve.disconnects" 1;
  emit_ev t "session_abort"
    [ ("session", Tea_observe.Events.I s.id); ("reason", Tea_observe.Events.S msg) ]

let complete t s =
  let prof =
    P.Profile.merge_all
      (List.map snd (Core.Multi_replayer.snapshots s.multi))
  in
  Mutex.lock t.fleet_m;
  t.fleet <- P.Profile.merge t.fleet prof;
  Mutex.unlock t.fleet_m;
  t.completed_n <- t.completed_n + 1;
  (match s.raw with
  | Some b -> t.retained <- Buffer.contents b :: t.retained
  | None -> ());
  Metrics.count t.reg "serve.sessions_completed" 1;
  Metrics.count t.reg "serve.blocks" s.blocks;
  Metrics.observe_value t.reg "serve.session_bytes" s.bytes_in;
  Metrics.observe_value t.reg "serve.session_blocks" s.blocks;
  if s.blocks > 0 then
    Metrics.observe_value t.reg "serve.session_ns_per_block"
      (s.busy_ns / s.blocks);
  emit_ev t "session_close"
    [
      ("session", Tea_observe.Events.I s.id);
      ("bytes", Tea_observe.Events.I s.bytes_in);
      ("blocks", Tea_observe.Events.I s.blocks);
    ];
  drift_check t;
  (try Frame.send s.fd Frame.tag_profile (Frame.encode_profile prof)
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close s.fd with Unix.Unix_error _ -> ()

let finalize t =
  let live = ref [] in
  List.iter
    (fun s ->
      if s.scrape then begin
        (* an answered observer: close and vanish — it never counted as
           a session, so give its accept slot back *)
        (try Unix.close s.fd with Unix.Unix_error _ -> ());
        t.accepted <- t.accepted - 1
      end
      else
        match s.failed with
        | Some msg -> drop t s msg
        | None ->
            if s.ended && Queue.is_empty s.queue then
              match Core.Pc_trace.decoder_finish s.dec with
              | () -> complete t s
              | exception Core.Pc_trace.Corrupt msg ->
                  drop t s ("corrupt trace: " ^ msg)
            else live := s :: !live)
    t.sessions;
  t.sessions <- List.rev !live

(* ---- the driver loop ---- *)

let run ?until_sessions t =
  let chunk = Bytes.create 65536 in
  let stopping = ref false in
  let finished = ref false in
  while not !finished do
    let accepting =
      (not !stopping) && not (accept_limit_reached t until_sessions)
    in
    let fds =
      (t.stop_r :: (if accepting then [ t.listen_fd ] else []))
      @ List.filter_map
          (fun s ->
            (* backpressure: a session at queue capacity is not read this
               cycle; its socket buffer fills and the client's writes
               block until the pool drains it *)
            if s.failed = None && not s.ended then begin
              if Queue.length s.queue < t.queue_cap then begin
                s.stalled <- false;
                Some s.fd
              end
              else begin
                if not s.stalled then begin
                  s.stalled <- true;
                  emit_ev t "pool_stall"
                    [
                      ("session", Tea_observe.Events.I s.id);
                      ("depth", Tea_observe.Events.I (Queue.length s.queue));
                    ]
                end;
                None
              end
            end
            else None)
          t.sessions
    in
    let ready, _, _ =
      try Unix.select fds [] [] (-1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.stop_r ready then begin
      (try ignore (Unix.read t.stop_r chunk 0 64)
       with Unix.Unix_error _ -> ());
      stopping := true
    end;
    if accepting && List.mem t.listen_fd ready then
      accept_all t until_sessions;
    List.iter
      (fun s -> if List.memq s.fd ready then read_session t chunk s)
      t.sessions;
    drain_cycle t;
    finalize t;
    if !stopping then begin
      List.iter
        (fun s -> drop t s "server shutting down")
        t.sessions;
      t.sessions <- [];
      finished := true
    end
    else if accept_limit_reached t until_sessions && t.sessions = [] then
      finished := true
  done

let stop t =
  try ignore (Unix.write t.stop_w (Bytes.make 1 '\001') 0 1)
  with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
      t.sessions;
    t.sessions <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    P.Pool.shutdown t.pool
  end

(* ---- results ---- *)

let completed t = t.completed_n

let disconnected t = t.disconnected_n

let offline_profile t =
  if not t.offline_check then
    invalid_arg "Server.offline_profile: created without ~offline_check:true";
  List.fold_left
    (fun acc raw ->
      let path = Filename.temp_file "tea_serve_offline" ".pctrace" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          output_string oc raw;
          close_out oc;
          let m = Core.Multi_replayer.replay_events (session_factory t) path in
          P.Profile.merge acc
            (P.Profile.merge_all
               (List.map snd (Core.Multi_replayer.snapshots m))))
      )
    P.Profile.empty (List.rev t.retained)
