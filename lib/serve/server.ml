module Core = Tea_core
module P = Tea_parallel
module Metrics = Tea_telemetry.Metrics

(* One connected client. The driver owns [fd]/[parser_]/[dec] and pushes
   decoded events onto [queue]; a pool worker drains [queue] into [multi]
   during a bulk-synchronous map cycle (the driver is blocked inside
   [Pool.map] for the whole cycle, so queue and replayer are never touched
   from two threads at once — the pool's mutex orders cycle N's worker
   against cycle N+1's). *)
type session = {
  id : int;  (* 1-based accept order, for the event log *)
  fd : Unix.file_descr;
  parser_ : Frame.parser_;
  dec : Core.Pc_trace.decoder;
  multi : Core.Multi_replayer.t;
  fdr : Core.Multi_replayer.feeder;  (* batches drain-cycle events *)
  queue : Evq.t;  (* unboxed event ring, see evq.mli *)
  raw : Buffer.t option;  (* retained bytes for the offline differential *)
  epoch0 : int;  (* image epoch the session was accepted under *)
  mutable evs : int;  (* events decoded so far (swap-schedule positions) *)
  mutable swapped : (int * int) list;  (* (event index, new epoch), newest first *)
  mutable ended : bool;  (* end-of-stream frame received *)
  mutable failed : string option;  (* first fatal error; session is dropped *)
  mutable scrape : bool;  (* a metrics observer, not a replay session *)
  mutable counted : bool;  (* bumped serve.sessions_accepted yet? *)
  mutable opened : bool;  (* session_open event emitted yet? *)
  mutable stalled : bool;  (* currently deselected by backpressure *)
  mutable bytes_in : int;
  mutable blocks : int;
  mutable busy_ns : int;  (* wall time inside drain tasks *)
}

(* Closed-loop retune knobs: how the daemon turns a sustained drift
   crossing into a background rebuild and a hot swap. *)
type retune = {
  up : int;  (* consecutive over-threshold sessions before a rebuild *)
  cooldown : int;  (* sessions ignored by the trigger after a swap *)
  fuse : bool;  (* fuse the repacked generation *)
  save_profile : string option;  (* TEAEP1 snapshot path per rebuild *)
}

let default_retune =
  {
    up = Tea_observe.Trigger.default_up;
    cooldown = Tea_observe.Trigger.default_cooldown;
    fuse = true;
    save_profile = None;
  }

type t = {
  mutable image : Core.Packed.t;  (* current epoch's dispatch image *)
  engine : [ `Packed | `Compiled ];
  pool : P.Pool.t;
  queue_cap : int;
  offline_check : bool;
  retain : bool;  (* keep completed streams (offline check/retune/save) *)
  base : Core.Packed.t option;  (* flat source image for rebuilds *)
  retune : retune option;
  trigger : Tea_observe.Trigger.t option;  (* Some iff retune is Some *)
  listen_fd : Unix.file_descr;
  bound : Frame.addr;
  unix_path : string option;
  stop_r : Unix.file_descr;  (* self-pipe: [stop] wakes a blocking select *)
  stop_w : Unix.file_descr;
  reg : Metrics.t;  (* driver-only; workers account into session fields *)
  events : Tea_observe.Events.t option;  (* None = no-op event log *)
  mutable drift : Tea_observe.Drift.t option;  (* None = no drift monitor *)
  mutable drift_over : bool;  (* above threshold at last measurement? *)
  mutable epoch : int;  (* 0 = boot image; bumped by every swap *)
  mutable epoch_images : (int * Core.Packed.t) list;  (* epoch -> image *)
  mutable builder : Tea_opt.Retune.builder option;  (* rebuild in flight *)
  mutable fleet_gen : int;  (* bumped per completion; trigger tick unit *)
  mutable checked_gen : int;  (* fleet_gen last observed by the trigger *)
  mutable swap_pause_ns : int;  (* cumulative wall time inside swaps *)
  mutable drain_ns : int;  (* busy ns over completed sessions *)
  mutable drain_blocks : int;  (* blocks over completed sessions *)
  mutable sessions : session list;
  mutable next_id : int;  (* monotonic session ids for the event log *)
  mutable accepted : int;
  mutable completed_n : int;
  mutable disconnected_n : int;
  fleet_m : Mutex.t;
  mutable fleet : P.Profile.t;
  mutable retained : (string * int * (int * int) list) list;
      (* completed streams, newest first: raw bytes, accept epoch, and
         the (event index, new epoch) swap schedule oldest-first — the
         recipe the offline differential needs to replay the exact same
         image at the exact same stream positions *)
  mutable closed : bool;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Per-asid replayer factory for a session's demuxed replay. Every
   session (and the offline re-check) dups the shared image, so
   compiled images — single-domain by construction — are never shared
   across sessions or workers. *)
let factory_of t img _asid =
  let img = Core.Packed.dup img in
  match t.engine with
  | `Packed -> Core.Replayer.create_packed img
  | `Compiled -> Core.Replayer.create_compiled (Core.Compiled.of_packed img)

let session_factory t asid = factory_of t t.image asid

let create ?(queue_cap = 16384) ?(offline_check = false) ?(engine = `Packed)
    ?(retain = false) ?events ?drift ?base ?retune ~jobs ~image addr =
  if queue_cap < 1 then invalid_arg "Server.create: queue_cap must be >= 1";
  (match (retune, drift, base) with
  | Some _, None, _ ->
      invalid_arg "Server.create: retune requires a drift monitor"
  | Some _, _, None ->
      invalid_arg "Server.create: retune requires the flat base image"
  | _ -> ());
  (* a dead client mid-write must be an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let unix_path =
    match addr with Frame.Unix_sock p -> Some p | Frame.Tcp _ -> None
  in
  (match unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  let dom =
    match addr with
    | Frame.Unix_sock _ -> Unix.PF_UNIX
    | Frame.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Frame.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
     | Frame.Unix_sock _ -> ());
     Unix.bind listen_fd (Frame.sockaddr_of_addr addr);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound =
    match addr with
    | Frame.Tcp (host, _) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Frame.Tcp (host, port)
        | _ -> addr)
    | a -> a
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    image;
    engine;
    pool = P.Pool.create ~jobs;
    queue_cap;
    offline_check;
    retain = offline_check || retain || retune <> None;
    base;
    retune;
    trigger =
      (match retune with
      | None -> None
      | Some r ->
          Some (Tea_observe.Trigger.create ~up:r.up ~cooldown:r.cooldown ()));
    listen_fd;
    bound;
    unix_path;
    stop_r;
    stop_w;
    reg = Metrics.create ();
    events;
    drift;
    drift_over = false;
    epoch = 0;
    epoch_images = [ (0, image) ];
    builder = None;
    fleet_gen = 0;
    checked_gen = 0;
    swap_pause_ns = 0;
    drain_ns = 0;
    drain_blocks = 0;
    sessions = [];
    next_id = 0;
    accepted = 0;
    completed_n = 0;
    disconnected_n = 0;
    fleet_m = Mutex.create ();
    fleet = P.Profile.empty;
    retained = [];
    closed = false;
  }

let addr t = t.bound

(* ---- observability (driver thread) ---- *)

let fleet_profile t =
  Mutex.lock t.fleet_m;
  let p = t.fleet in
  Mutex.unlock t.fleet_m;
  p

let metrics t =
  Metrics.merge (Metrics.snapshot t.reg) (P.Pool.metrics_snapshot t.pool)

let drift_distance t =
  match t.drift with
  | None -> None
  | Some d ->
      let fleet = fleet_profile t in
      Some
        ( Tea_observe.Drift.measure d fleet.P.Profile.counts,
          Tea_observe.Drift.threshold d )

(* The scrape answer, also readable after [run] returns. Reads only
   driver-owned or mutex/merge-protected state (registry, pool snapshot,
   the global tier snapshot, the fleet), so rendering between drain
   cycles never pauses ingestion. Deterministic: a function of the
   snapshots alone, so the post-run scrape text equals this rendered
   after shutdown byte-for-byte. *)
let exposition t =
  Tea_observe.Exposition.render
    ~tiers:(Core.Tierstat.snapshot ())
    ~translate:(fun st -> Core.Packed.orig_state t.image st)
    ?drift:(drift_distance t)
    ?epoch:(match t.retune with None -> None | Some _ -> Some t.epoch)
    (metrics t)

let emit_ev t kind fields =
  match t.events with
  | None -> ()
  | Some e -> Tea_observe.Events.emit e kind fields

(* Re-measure drift against the fleet and event the threshold crossing
   (upward edge only; dropping back below re-arms it). The crossing
   event depends on completion order, so it lives in the event log only
   — the exposition gauge is a pure function of the final fleet. *)
let drift_check t =
  match t.drift with
  | None -> ()
  | Some d ->
      let dist =
        Tea_observe.Drift.measure d (fleet_profile t).P.Profile.counts
      in
      if Tea_observe.Drift.exceeded d dist then begin
        if not t.drift_over then
          emit_ev t "drift_threshold"
            [
              ("distance", Tea_observe.Events.F dist);
              ("threshold", Tea_observe.Events.F (Tea_observe.Drift.threshold d));
            ];
        t.drift_over <- true
      end
      else t.drift_over <- false

(* ---- ingestion (driver thread) ---- *)

let fail_session s msg = if s.failed = None then s.failed <- Some msg

(* Deferred accounting: a connection only counts as an accepted session
   once its first frame proves it is one. Scrape connections are pure
   observers — they bump no counter and emit no event, so a scrape can
   never perturb the exposition it returns (post-run scrape text ==
   offline exposition is a hard test). *)
let count_session t s =
  if not s.counted then begin
    s.counted <- true;
    Metrics.count t.reg "serve.sessions_accepted" 1
  end

let on_frame t s (f : Frame.frame) =
  if s.scrape then () (* observer: ignore anything after the scrape ask *)
  else if f.Frame.tag = Frame.tag_scrape && s.bytes_in = 0 && not s.ended
  then begin
    s.scrape <- true;
    try Frame.send s.fd Frame.tag_metrics (exposition t)
    with Unix.Unix_error _ | Sys_error _ -> ()
  end
  else begin
    count_session t s;
    Metrics.count t.reg "serve.frames" 1;
    if s.ended then fail_session s "frame after end-of-stream"
    else if f.Frame.tag = Frame.tag_data then begin
      if not s.opened then begin
        s.opened <- true;
        emit_ev t "session_open" [ ("session", Tea_observe.Events.I s.id) ]
      end;
      let n = String.length f.payload in
      s.bytes_in <- s.bytes_in + n;
      Metrics.count t.reg "serve.bytes_in" n;
      (match s.raw with
      | Some b -> Buffer.add_string b f.payload
      | None -> ());
      Core.Pc_trace.decoder_feed s.dec f.payload (fun ~asid ev ->
          (* [evs] numbers stream positions for the swap schedule; by
             the time a swap can happen (a drain-cycle boundary) every
             pushed event has been fed, so the count is exact *)
          s.evs <- s.evs + 1;
          Evq.push s.queue ~asid ev)
    end
    else if f.Frame.tag = Frame.tag_end then s.ended <- true
    else fail_session s (Printf.sprintf "unexpected frame tag %C" f.Frame.tag)
  end

let read_session t chunk s =
  match Unix.read s.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      fail_session s "connection reset"
  | 0 -> if not s.ended then fail_session s "eof before end-of-stream"
  | k -> (
      try Frame.parser_feed s.parser_ (Bytes.sub_string chunk 0 k) (on_frame t s)
      with
      | Frame.Corrupt msg -> fail_session s ("bad framing: " ^ msg)
      | Core.Pc_trace.Corrupt msg -> fail_session s ("corrupt trace: " ^ msg))

let accept_limit_reached t until_sessions =
  match until_sessions with Some n -> t.accepted >= n | None -> false

let rec accept_all t until_sessions =
  if not (accept_limit_reached t until_sessions) then
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        accept_all t until_sessions
    | fd, _ ->
        t.accepted <- t.accepted + 1;
        t.next_id <- t.next_id + 1;
        let multi = Core.Multi_replayer.create (session_factory t) in
        let s =
          {
            id = t.next_id;
            fd;
            parser_ = Frame.parser_ ();
            dec = Core.Pc_trace.decoder ();
            multi;
            fdr = Core.Multi_replayer.feeder multi;
            queue = Evq.create ();
            raw = (if t.retain then Some (Buffer.create 4096) else None);
            epoch0 = t.epoch;
            evs = 0;
            swapped = [];
            ended = false;
            failed = None;
            scrape = false;
            counted = false;
            opened = false;
            stalled = false;
            bytes_in = 0;
            blocks = 0;
            busy_ns = 0;
          }
        in
        t.sessions <- t.sessions @ [ s ];
        accept_all t until_sessions

(* ---- replay (pool workers, bulk-synchronous) ---- *)

let drain_cycle t =
  let ready =
    List.filter (fun s -> s.failed = None && not (Evq.is_empty s.queue))
      t.sessions
  in
  if ready <> [] then begin
    let arr = Array.of_list ready in
    Array.iter
      (fun s ->
        Metrics.observe_value t.reg "serve.queue_depth" (Evq.length s.queue))
      arr;
    ignore
      (P.Pool.map t.pool
         ~f:(fun i ->
           let s = arr.(i) in
           let t0 = now_ns () in
           let n = ref 0 in
           (* The feeder batches consecutive same-asid blocks through
              Replayer.feed_run — the same engine loops (and the same
              dispatch-tier attribution) offline replay takes — and is
              flushed before the task ends, so a completed session's
              profile is always fully materialized. *)
           (try
              let q = s.queue in
              while not (Evq.is_empty q) do
                let tag = Evq.tag q
                and asid = Evq.asid q
                and a = Evq.f1 q
                and b = Evq.f2 q in
                Evq.drop q;
                if tag = Evq.tag_block then begin
                  (* the unboxed fast path: fields go straight into the
                     feeder's run buffer, no event value is rebuilt *)
                  Core.Multi_replayer.feeder_block s.fdr ~asid ~start:a
                    ~insns:b;
                  incr n
                end
                else
                  Core.Multi_replayer.feeder_feed s.fdr ~asid
                    (if tag = Evq.tag_switch then
                       Core.Pc_trace.Switch { asid = a }
                     else if tag = Evq.tag_invalidate then
                       Core.Pc_trace.Invalidate { asid = a }
                     else Core.Pc_trace.Interrupt)
              done;
              Core.Multi_replayer.feeder_flush s.fdr
            with e ->
              s.failed <- Some ("replay error: " ^ Printexc.to_string e));
           P.Pool.add_units t.pool !n;
           s.blocks <- s.blocks + !n;
           s.busy_ns <- s.busy_ns + (now_ns () - t0))
         (Array.length arr))
  end

(* ---- completion / disconnect (driver thread) ---- *)

let drop t s msg =
  (* a connection that died before any frame still counts: it was a
     (failed) session, not a scrape *)
  count_session t s;
  (try Frame.send s.fd Frame.tag_error msg
   with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  t.disconnected_n <- t.disconnected_n + 1;
  Metrics.count t.reg "serve.disconnects" 1;
  emit_ev t "session_abort"
    [ ("session", Tea_observe.Events.I s.id); ("reason", Tea_observe.Events.S msg) ]

let complete t s =
  let prof =
    P.Profile.merge_all
      (List.map snd (Core.Multi_replayer.snapshots s.multi))
  in
  Mutex.lock t.fleet_m;
  t.fleet <- P.Profile.merge t.fleet prof;
  Mutex.unlock t.fleet_m;
  t.completed_n <- t.completed_n + 1;
  t.fleet_gen <- t.fleet_gen + 1;
  t.drain_ns <- t.drain_ns + s.busy_ns;
  t.drain_blocks <- t.drain_blocks + s.blocks;
  (match s.raw with
  | Some b ->
      t.retained <-
        (Buffer.contents b, s.epoch0, List.rev s.swapped) :: t.retained
  | None -> ());
  Metrics.count t.reg "serve.sessions_completed" 1;
  Metrics.count t.reg "serve.blocks" s.blocks;
  Metrics.observe_value t.reg "serve.session_bytes" s.bytes_in;
  Metrics.observe_value t.reg "serve.session_blocks" s.blocks;
  if s.blocks > 0 then
    Metrics.observe_value t.reg "serve.session_ns_per_block"
      (s.busy_ns / s.blocks);
  emit_ev t "session_close"
    [
      ("session", Tea_observe.Events.I s.id);
      ("bytes", Tea_observe.Events.I s.bytes_in);
      ("blocks", Tea_observe.Events.I s.blocks);
    ];
  drift_check t;
  (try Frame.send s.fd Frame.tag_profile (Frame.encode_profile prof)
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close s.fd with Unix.Unix_error _ -> ()

let finalize t =
  let live = ref [] in
  List.iter
    (fun s ->
      if s.scrape then begin
        (* an answered observer: close and vanish — it never counted as
           a session, so give its accept slot back *)
        (try Unix.close s.fd with Unix.Unix_error _ -> ());
        t.accepted <- t.accepted - 1
      end
      else
        match s.failed with
        | Some msg -> drop t s msg
        | None ->
            if s.ended && Evq.is_empty s.queue then
              match Core.Pc_trace.decoder_finish s.dec with
              | () -> complete t s
              | exception Core.Pc_trace.Corrupt msg ->
                  drop t s ("corrupt trace: " ^ msg)
            else live := s :: !live)
    t.sessions;
  t.sessions <- List.rev !live

(* ---- closed-loop retune (driver thread) ---- *)

let profile_visits (prof : Tea_opt.Repack.profile) =
  let acc = ref [] in
  let v = prof.Tea_opt.Repack.visits in
  for i = Array.length v - 1 downto 0 do
    if v.(i) > 0 then acc := (i, v.(i)) :: !acc
  done;
  !acc

(* Install a freshly built image as the next epoch. Runs between drain
   cycles, which is what makes it safe and exact: every session queue is
   empty and every feeder flushed, so each session's [evs] counter is
   precisely the stream position the swap lands on — recorded in the
   schedule the offline differential replays. Live replayers are
   rebound in place (counts/state/stats carried through the orig-id
   permutation), and the drift monitor is re-referenced to the profile
   the new layout was tuned for, so the gauge measures staleness of the
   {e current} image, not the boot one. *)
let swap_image t cfg (img, prof) =
  let t0 = now_ns () in
  t.epoch <- t.epoch + 1;
  t.image <- img;
  t.epoch_images <- (t.epoch, img) :: t.epoch_images;
  let rebound = ref 0 in
  List.iter
    (fun s ->
      if (not s.scrape) && s.failed = None then begin
        Core.Multi_replayer.rebind s.multi (factory_of t img);
        s.swapped <- (s.evs, t.epoch) :: s.swapped;
        incr rebound
      end)
    t.sessions;
  (match t.drift with
  | Some d ->
      t.drift <-
        Some
          (Tea_observe.Drift.create ~k:(Tea_observe.Drift.k d)
             ~threshold:(Tea_observe.Drift.threshold d)
             (profile_visits prof));
      t.drift_over <- false
  | None -> ());
  (match cfg.save_profile with
  | Some path -> Tea_opt.Repack.save_profile path prof
  | None -> ());
  let pause = now_ns () - t0 in
  t.swap_pause_ns <- t.swap_pause_ns + pause;
  Metrics.count t.reg "serve.swaps" 1;
  emit_ev t "swap"
    [
      ("epoch", Tea_observe.Events.I t.epoch);
      ("sessions", Tea_observe.Events.I !rebound);
      ("pause_ns", Tea_observe.Events.I pause);
    ]

(* One retune tick, between drain cycles: harvest a finished background
   rebuild (and swap), then — one observation per completed session, so
   hysteresis is measured in sessions, not select wakeups — ask the
   trigger whether to launch the next rebuild over a snapshot of the
   streams retained so far. *)
let retune_tick t =
  match (t.retune, t.trigger) with
  | Some cfg, Some trig ->
      (match t.builder with
      | Some b -> (
          match Tea_opt.Retune.poll b with
          | None -> ()
          | Some (Error e) ->
              t.builder <- None;
              emit_ev t "retune_failed"
                [ ("error", Tea_observe.Events.S (Printexc.to_string e)) ]
          | Some (Ok built) ->
              t.builder <- None;
              swap_image t cfg built)
      | None -> ());
      if Option.is_none t.builder && t.fleet_gen > t.checked_gen then begin
        let ticks = t.fleet_gen - t.checked_gen in
        t.checked_gen <- t.fleet_gen;
        match t.drift with
        | None -> ()
        | Some d ->
            let dist =
              Tea_observe.Drift.measure d (fleet_profile t).P.Profile.counts
            in
            let over = Tea_observe.Drift.exceeded d dist in
            let fire = ref false in
            for _ = 1 to ticks do
              if Tea_observe.Trigger.observe trig over then fire := true
            done;
            if !fire then begin
              let raws = List.rev_map (fun (r, _, _) -> r) t.retained in
              let base = Option.get t.base in
              emit_ev t "retune_start"
                [
                  ("distance", Tea_observe.Events.F dist);
                  ("streams", Tea_observe.Events.I (List.length raws));
                ];
              Metrics.count t.reg "serve.retunes" 1;
              t.builder <-
                Some
                  (Tea_opt.Retune.launch (fun () ->
                       let segs = Tea_opt.Retune.segments_of_raws raws in
                       Tea_opt.Retune.build ~fuse:cfg.fuse ~src:base
                         ~profile_of:(fun img ->
                           Tea_opt.Retune.collect_segments img segs)
                         ()))
            end
      end
  | _ -> ()

(* ---- the driver loop ---- *)

let run ?until_sessions t =
  let chunk = Bytes.create 65536 in
  let stopping = ref false in
  let finished = ref false in
  while not !finished do
    let accepting =
      (not !stopping) && not (accept_limit_reached t until_sessions)
    in
    let fds =
      (t.stop_r :: (if accepting then [ t.listen_fd ] else []))
      @ List.filter_map
          (fun s ->
            (* backpressure: a session at queue capacity is not read this
               cycle; its socket buffer fills and the client's writes
               block until the pool drains it *)
            if s.failed = None && not s.ended then begin
              if Evq.length s.queue < t.queue_cap then begin
                s.stalled <- false;
                Some s.fd
              end
              else begin
                if not s.stalled then begin
                  s.stalled <- true;
                  emit_ev t "pool_stall"
                    [
                      ("session", Tea_observe.Events.I s.id);
                      ("depth", Tea_observe.Events.I (Evq.length s.queue));
                    ]
                end;
                None
              end
            end
            else None)
          t.sessions
    in
    (* with a rebuild in flight, wake periodically so the finished
       image gets swapped in even while no client is talking *)
    let timeout = if Option.is_some t.builder then 0.02 else -1.0 in
    let ready, _, _ =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.stop_r ready then begin
      (try ignore (Unix.read t.stop_r chunk 0 64)
       with Unix.Unix_error _ -> ());
      stopping := true
    end;
    if accepting && List.mem t.listen_fd ready then
      accept_all t until_sessions;
    List.iter
      (fun s -> if List.memq s.fd ready then read_session t chunk s)
      t.sessions;
    drain_cycle t;
    finalize t;
    retune_tick t;
    if !stopping then begin
      List.iter
        (fun s -> drop t s "server shutting down")
        t.sessions;
      t.sessions <- [];
      finished := true
    end
    else if accept_limit_reached t until_sessions && t.sessions = [] then
      finished := true
  done;
  (* a rebuild still in flight at shutdown: join its domain and discard
     the image — there is no traffic left to serve it to *)
  match t.builder with
  | Some b ->
      ignore (Tea_opt.Retune.await b);
      t.builder <- None
  | None -> ()

let stop t =
  try ignore (Unix.write t.stop_w (Bytes.make 1 '\001') 0 1)
  with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
      t.sessions;
    t.sessions <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    P.Pool.shutdown t.pool
  end

(* ---- results ---- *)

let completed t = t.completed_n

let disconnected t = t.disconnected_n

let epoch t = t.epoch

let swap_pause_ns t = t.swap_pause_ns

let drain_totals t = (t.drain_ns, t.drain_blocks)

let image_of_epoch t e =
  match List.assoc_opt e t.epoch_images with Some img -> img | None -> t.image

(* Sequential re-replay of every retained stream, honouring each
   session's recorded swap schedule: the stream enters on the image of
   its accept epoch and is rebound at exactly the event indices the live
   daemon swapped at. Cycles are the one profile component that depends
   on the image layout, so replaying the same positions on the same
   epochs is precisely what makes fleet == offline a bit-exact gate
   across any number of swaps. *)
let offline_profile t =
  if not t.offline_check then
    invalid_arg "Server.offline_profile: created without ~offline_check:true";
  List.fold_left
    (fun acc (raw, epoch0, swaps) ->
      let evs = ref [] in
      let dec = Core.Pc_trace.decoder () in
      Core.Pc_trace.decoder_feed dec raw (fun ~asid ev ->
          evs := (asid, ev) :: !evs);
      Core.Pc_trace.decoder_finish dec;
      let events = Array.of_list (List.rev !evs) in
      let m =
        Core.Multi_replayer.create (factory_of t (image_of_epoch t epoch0))
      in
      let fdr = Core.Multi_replayer.feeder m in
      let pending = ref swaps in
      let rec maybe_swap i =
        match !pending with
        | (at, ep) :: rest when at <= i ->
            Core.Multi_replayer.feeder_flush fdr;
            Core.Multi_replayer.rebind m (factory_of t (image_of_epoch t ep));
            pending := rest;
            maybe_swap i
        | _ -> ()
      in
      Array.iteri
        (fun i (asid, ev) ->
          maybe_swap i;
          Core.Multi_replayer.feeder_feed fdr ~asid ev)
        events;
      Core.Multi_replayer.feeder_flush fdr;
      P.Profile.merge acc
        (P.Profile.merge_all (List.map snd (Core.Multi_replayer.snapshots m))))
    P.Profile.empty (List.rev t.retained)

(* The fleet's traffic as an edge profile over the flat base image, in
   orig-id space — what [serve --save-fleet-profile] persists as TEAEP1
   so the next daemon start (or an offline repack) can seed tuning from
   real traffic. A pure function of the retained streams: collect walks
   the base image; epochs are irrelevant. *)
let fleet_edge_profile t =
  match t.base with
  | None -> invalid_arg "Server.fleet_edge_profile: created without ~base"
  | Some base ->
      if not t.retain then
        invalid_arg "Server.fleet_edge_profile: stream retention is off";
      let segs =
        Tea_opt.Retune.segments_of_raws
          (List.rev_map (fun (r, _, _) -> r) t.retained)
      in
      Tea_opt.Retune.collect_segments base segs
