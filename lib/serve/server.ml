module Core = Tea_core
module P = Tea_parallel
module Metrics = Tea_telemetry.Metrics

(* One connected client. The driver owns [fd]/[parser_]/[dec] and pushes
   decoded events onto [queue]; a pool worker drains [queue] into [multi]
   during a bulk-synchronous map cycle (the driver is blocked inside
   [Pool.map] for the whole cycle, so queue and replayer are never touched
   from two threads at once — the pool's mutex orders cycle N's worker
   against cycle N+1's). *)
type session = {
  fd : Unix.file_descr;
  parser_ : Frame.parser_;
  dec : Core.Pc_trace.decoder;
  multi : Core.Multi_replayer.t;
  queue : (int * Core.Pc_trace.event) Queue.t;
  raw : Buffer.t option;  (* retained bytes for the offline differential *)
  mutable ended : bool;  (* end-of-stream frame received *)
  mutable failed : string option;  (* first fatal error; session is dropped *)
  mutable bytes_in : int;
  mutable blocks : int;
  mutable busy_ns : int;  (* wall time inside drain tasks *)
}

type t = {
  image : Core.Packed.t;
  pool : P.Pool.t;
  queue_cap : int;
  offline_check : bool;
  listen_fd : Unix.file_descr;
  bound : Frame.addr;
  unix_path : string option;
  stop_r : Unix.file_descr;  (* self-pipe: [stop] wakes a blocking select *)
  stop_w : Unix.file_descr;
  reg : Metrics.t;  (* driver-only; workers account into session fields *)
  mutable sessions : session list;
  mutable accepted : int;
  mutable completed_n : int;
  mutable disconnected_n : int;
  fleet_m : Mutex.t;
  mutable fleet : P.Profile.t;
  mutable retained : string list;  (* completed streams, newest first *)
  mutable closed : bool;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let create ?(queue_cap = 16384) ?(offline_check = false) ~jobs ~image addr =
  if queue_cap < 1 then invalid_arg "Server.create: queue_cap must be >= 1";
  (* a dead client mid-write must be an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let unix_path =
    match addr with Frame.Unix_sock p -> Some p | Frame.Tcp _ -> None
  in
  (match unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  let dom =
    match addr with
    | Frame.Unix_sock _ -> Unix.PF_UNIX
    | Frame.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Frame.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
     | Frame.Unix_sock _ -> ());
     Unix.bind listen_fd (Frame.sockaddr_of_addr addr);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound =
    match addr with
    | Frame.Tcp (host, _) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Frame.Tcp (host, port)
        | _ -> addr)
    | a -> a
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    image;
    pool = P.Pool.create ~jobs;
    queue_cap;
    offline_check;
    listen_fd;
    bound;
    unix_path;
    stop_r;
    stop_w;
    reg = Metrics.create ();
    sessions = [];
    accepted = 0;
    completed_n = 0;
    disconnected_n = 0;
    fleet_m = Mutex.create ();
    fleet = P.Profile.empty;
    retained = [];
    closed = false;
  }

let addr t = t.bound

(* ---- ingestion (driver thread) ---- *)

let fail_session s msg = if s.failed = None then s.failed <- Some msg

let on_frame t s (f : Frame.frame) =
  Metrics.count t.reg "serve.frames" 1;
  if s.ended then fail_session s "frame after end-of-stream"
  else if f.Frame.tag = Frame.tag_data then begin
    let n = String.length f.payload in
    s.bytes_in <- s.bytes_in + n;
    Metrics.count t.reg "serve.bytes_in" n;
    (match s.raw with
    | Some b -> Buffer.add_string b f.payload
    | None -> ());
    Core.Pc_trace.decoder_feed s.dec f.payload (fun ~asid ev ->
        Queue.push (asid, ev) s.queue)
  end
  else if f.Frame.tag = Frame.tag_end then s.ended <- true
  else fail_session s (Printf.sprintf "unexpected frame tag %C" f.Frame.tag)

let read_session t chunk s =
  match Unix.read s.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      fail_session s "connection reset"
  | 0 -> if not s.ended then fail_session s "eof before end-of-stream"
  | k -> (
      try Frame.parser_feed s.parser_ (Bytes.sub_string chunk 0 k) (on_frame t s)
      with
      | Frame.Corrupt msg -> fail_session s ("bad framing: " ^ msg)
      | Core.Pc_trace.Corrupt msg -> fail_session s ("corrupt trace: " ^ msg))

let accept_limit_reached t until_sessions =
  match until_sessions with Some n -> t.accepted >= n | None -> false

let rec accept_all t until_sessions =
  if not (accept_limit_reached t until_sessions) then
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        accept_all t until_sessions
    | fd, _ ->
        t.accepted <- t.accepted + 1;
        Metrics.count t.reg "serve.sessions_accepted" 1;
        let s =
          {
            fd;
            parser_ = Frame.parser_ ();
            dec = Core.Pc_trace.decoder ();
            multi =
              Core.Multi_replayer.create (fun _ ->
                  Core.Replayer.create_packed (Core.Packed.dup t.image));
            queue = Queue.create ();
            raw =
              (if t.offline_check then Some (Buffer.create 4096) else None);
            ended = false;
            failed = None;
            bytes_in = 0;
            blocks = 0;
            busy_ns = 0;
          }
        in
        t.sessions <- t.sessions @ [ s ];
        accept_all t until_sessions

(* ---- replay (pool workers, bulk-synchronous) ---- *)

let drain_cycle t =
  let ready =
    List.filter (fun s -> s.failed = None && not (Queue.is_empty s.queue))
      t.sessions
  in
  if ready <> [] then begin
    let arr = Array.of_list ready in
    Array.iter
      (fun s ->
        Metrics.observe_value t.reg "serve.queue_depth" (Queue.length s.queue))
      arr;
    ignore
      (P.Pool.map t.pool
         ~f:(fun i ->
           let s = arr.(i) in
           let t0 = now_ns () in
           let n = ref 0 in
           (try
              while not (Queue.is_empty s.queue) do
                let asid, ev = Queue.pop s.queue in
                Core.Multi_replayer.feed s.multi ~asid ev;
                match ev with
                | Core.Pc_trace.Block _ -> incr n
                | _ -> ()
              done
            with e ->
              s.failed <- Some ("replay error: " ^ Printexc.to_string e));
           P.Pool.add_units t.pool !n;
           s.blocks <- s.blocks + !n;
           s.busy_ns <- s.busy_ns + (now_ns () - t0))
         (Array.length arr))
  end

(* ---- completion / disconnect (driver thread) ---- *)

let drop t s msg =
  (try Frame.send s.fd Frame.tag_error msg
   with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  t.disconnected_n <- t.disconnected_n + 1;
  Metrics.count t.reg "serve.disconnects" 1

let complete t s =
  let prof =
    P.Profile.merge_all
      (List.map snd (Core.Multi_replayer.snapshots s.multi))
  in
  Mutex.lock t.fleet_m;
  t.fleet <- P.Profile.merge t.fleet prof;
  Mutex.unlock t.fleet_m;
  t.completed_n <- t.completed_n + 1;
  (match s.raw with
  | Some b -> t.retained <- Buffer.contents b :: t.retained
  | None -> ());
  Metrics.count t.reg "serve.sessions_completed" 1;
  Metrics.count t.reg "serve.blocks" s.blocks;
  Metrics.observe_value t.reg "serve.session_bytes" s.bytes_in;
  Metrics.observe_value t.reg "serve.session_blocks" s.blocks;
  if s.blocks > 0 then
    Metrics.observe_value t.reg "serve.session_ns_per_block"
      (s.busy_ns / s.blocks);
  (try Frame.send s.fd Frame.tag_profile (Frame.encode_profile prof)
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close s.fd with Unix.Unix_error _ -> ()

let finalize t =
  let live = ref [] in
  List.iter
    (fun s ->
      match s.failed with
      | Some msg -> drop t s msg
      | None ->
          if s.ended && Queue.is_empty s.queue then
            match Core.Pc_trace.decoder_finish s.dec with
            | () -> complete t s
            | exception Core.Pc_trace.Corrupt msg ->
                drop t s ("corrupt trace: " ^ msg)
          else live := s :: !live)
    t.sessions;
  t.sessions <- List.rev !live

(* ---- the driver loop ---- *)

let run ?until_sessions t =
  let chunk = Bytes.create 65536 in
  let stopping = ref false in
  let finished = ref false in
  while not !finished do
    let accepting =
      (not !stopping) && not (accept_limit_reached t until_sessions)
    in
    let fds =
      (t.stop_r :: (if accepting then [ t.listen_fd ] else []))
      @ List.filter_map
          (fun s ->
            (* backpressure: a session at queue capacity is not read this
               cycle; its socket buffer fills and the client's writes
               block until the pool drains it *)
            if s.failed = None && (not s.ended)
               && Queue.length s.queue < t.queue_cap
            then Some s.fd
            else None)
          t.sessions
    in
    let ready, _, _ =
      try Unix.select fds [] [] (-1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.stop_r ready then begin
      (try ignore (Unix.read t.stop_r chunk 0 64)
       with Unix.Unix_error _ -> ());
      stopping := true
    end;
    if accepting && List.mem t.listen_fd ready then
      accept_all t until_sessions;
    List.iter
      (fun s -> if List.memq s.fd ready then read_session t chunk s)
      t.sessions;
    drain_cycle t;
    finalize t;
    if !stopping then begin
      List.iter
        (fun s -> drop t s "server shutting down")
        t.sessions;
      t.sessions <- [];
      finished := true
    end
    else if accept_limit_reached t until_sessions && t.sessions = [] then
      finished := true
  done

let stop t =
  try ignore (Unix.write t.stop_w (Bytes.make 1 '\001') 0 1)
  with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
      t.sessions;
    t.sessions <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    P.Pool.shutdown t.pool
  end

(* ---- results ---- *)

let fleet_profile t =
  Mutex.lock t.fleet_m;
  let p = t.fleet in
  Mutex.unlock t.fleet_m;
  p

let completed t = t.completed_n

let disconnected t = t.disconnected_n

let offline_profile t =
  if not t.offline_check then
    invalid_arg "Server.offline_profile: created without ~offline_check:true";
  List.fold_left
    (fun acc raw ->
      let path = Filename.temp_file "tea_serve_offline" ".pctrace" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          output_string oc raw;
          close_out oc;
          let m =
            Core.Multi_replayer.replay_events
              (fun _ -> Core.Replayer.create_packed (Core.Packed.dup t.image))
              path
          in
          P.Profile.merge acc
            (P.Profile.merge_all
               (List.map snd (Core.Multi_replayer.snapshots m))))
      )
    P.Profile.empty (List.rev t.retained)

let metrics t =
  Metrics.merge (Metrics.snapshot t.reg) (P.Pool.metrics_snapshot t.pool)
