(** [tea_serve]: the replay-as-a-service daemon.

    One long-lived process serves many concurrent PC-trace sessions
    against a {e single shared read-only} {!Tea_core.Packed.t} image —
    the ROADMAP's "millions of users" story: a session is cheap (one
    {!Tea_core.Multi_replayer} over a {!Tea_core.Packed.dup} of the
    image), and per-session profiles are associative, so they fold into
    one live {e fleet profile} exactly.

    Architecture (the panda-il-trace shape: ingestion never blocks on
    analysis):

    - a single {b driver} thread owns all I/O: it [select]s over the
      listener, a stop pipe and every live session socket, accepts new
      sessions, parses {!Frame}s and feeds the bytes through each
      session's incremental {!Tea_core.Pc_trace.decoder} onto a {b
      bounded per-session event queue};
    - each cycle, every session with queued events becomes one task on a
      {!Tea_parallel.Pool} — sessions replay {e in parallel across} the
      pool while each session's own events stay strictly ordered (one
      task per session per cycle, ordered by the pool mutex);
    - {b backpressure} is per-session: a session whose queue is at
      capacity is dropped from the read set until the pool drains it, so
      its kernel socket buffer fills and {e that client's} writes block —
      a slow consumer throttles its own producer, never the fleet;
    - a completed session (end-of-stream frame received and queue
      drained) folds its profile into the fleet and gets the profile
      echoed back; a {b mid-stream disconnect} (EOF, reset, bad framing,
      corrupt trace) discards the partial session — other sessions and
      the fleet profile are untouched.

    The daemon gate: the fleet profile of [n] concurrent sessions equals
    the merged profiles of replaying each session's stream offline,
    sequentially ({!Tea_parallel.Profile.equal} — property-tested at
    jobs 1/2/4, on flat and repacked+fused images).

    {b Closed-loop continuous PGO.} With [~retune] the daemon re-tunes
    itself: after each completed session the drift gauge is fed to a
    {!Tea_observe.Trigger}; when it fires, a background domain rebuilds
    the repack→fuse ladder from the {e flat base image} and the traffic
    retained so far ({!Tea_opt.Retune}), and the finished image is
    hot-swapped in between two drain cycles — every live session's
    replayers are rebound in place ({!Tea_core.Multi_replayer.rebind}),
    the swap position is recorded per session, and the image {e epoch}
    (0 = boot) is bumped, evented ([swap]) and exposed as a
    [tea_image_epoch] gauge. Because queues are empty and feeders
    flushed at a drain-cycle boundary, {!offline_profile} can replay
    each stream against the exact same image at the exact same
    positions: fleet == offline stays bit-exact across any number of
    swaps. *)

type t

type retune = {
  up : int;
      (** consecutive over-threshold sessions before a rebuild fires *)
  cooldown : int;
      (** completed sessions the trigger ignores after a swap *)
  fuse : bool;  (** fuse the repacked generation *)
  save_profile : string option;
      (** write each rebuild's orig-space edge-profile snapshot (TEAEP1)
          to this path *)
}

val default_retune : retune
(** {!Tea_observe.Trigger.default_up} / [default_cooldown], fusing,
    no snapshot file. *)

val create :
  ?queue_cap:int ->
  ?offline_check:bool ->
  ?engine:[ `Packed | `Compiled ] ->
  ?retain:bool ->
  ?events:Tea_observe.Events.t ->
  ?drift:Tea_observe.Drift.t ->
  ?base:Tea_core.Packed.t ->
  ?retune:retune ->
  jobs:int ->
  image:Tea_core.Packed.t ->
  Frame.addr ->
  t
(** Bind, listen and spawn the worker pool. [queue_cap] (default 16384)
    bounds each session's decoded-event queue; [offline_check] (default
    false) retains every completed session's raw bytes so
    {!offline_profile} can re-derive the fleet profile sequentially.
    [engine] (default [`Packed]) selects the dispatch engine each
    session's per-asid replayers run on: [`Compiled] closure-threads a
    private {!Tea_core.Compiled.of_packed} of a
    {!Tea_core.Packed.dup} per asid — observationally identical, so the
    fleet profile and the offline re-check are unchanged.
    [events] attaches a structured JSONL event log (session lifecycle,
    pool stalls, drift crossings, retune/swap); [drift] attaches a
    profile-drift comparator re-measured against the fleet profile
    after every completed session. Both default to off — the disabled
    path adds no work to the drain cycle.

    [base] is the flat (unfused, unrepacked) source image rebuilds and
    {!fleet_edge_profile} collect over; [retune] enables the closed
    loop and requires both [drift] and [base]. [retain] forces stream
    retention without [offline_check] (implied by [offline_check] and
    [retune]) — what {!fleet_edge_profile} needs.

    A [Unix_sock] path is unlinked first; [Tcp] port 0 binds an
    ephemeral port (read it back with {!addr}).
    @raise Invalid_argument when [jobs < 1], [queue_cap < 1], or
    [retune] is given without [drift]/[base].
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> Frame.addr
(** The bound address (with the real port for ephemeral TCP). *)

val run : ?until_sessions:int -> t -> unit
(** The driver loop, on the calling thread. Returns after {!stop}, or —
    with [until_sessions = n] — once [n] sessions have been accepted and
    every accepted session terminated (completed or disconnected); the
    listener stops accepting after the [n]th. Call once. *)

val stop : t -> unit
(** Ask a running {!run} to return (thread/domain-safe, returns
    immediately; idempotent). *)

val close : t -> unit
(** Release sockets and shut the pool down. Idempotent; call after
    {!run} returned. *)

(** {2 Results and observability} *)

val fleet_profile : t -> Tea_parallel.Profile.t
(** The live fleet profile: the merge of every completed session's
    profile (thread-safe). *)

val completed : t -> int

val disconnected : t -> int
(** Sessions dropped mid-stream (EOF without end-of-stream frame, bad
    framing, corrupt trace bytes). Their partial profiles are {e not} in
    the fleet. *)

val offline_profile : t -> Tea_parallel.Profile.t
(** Sequential reference replay: every retained completed-session stream
    replayed offline, one fresh replayer per session, honouring the
    session's recorded swap schedule (same image epoch at the same
    stream positions), merged. With the daemon gate this is
    {!Tea_parallel.Profile.equal} to {!fleet_profile} — across any
    number of hot swaps.
    @raise Invalid_argument unless the server was created with
    [~offline_check:true]. *)

val epoch : t -> int
(** Current image epoch: 0 until the first hot swap. *)

val swap_pause_ns : t -> int
(** Cumulative wall time spent inside swaps (epoch bump + rebinding
    every live session) — the "stop" part of stop-the-fleet, measured. *)

val drain_totals : t -> int * int
(** [(busy_ns, blocks)] summed over completed sessions — the replay
    work the pool did, excluding socket I/O and decode. Steady-state
    ns/block between two samples is the retune bench's throughput
    measure. *)

val fleet_edge_profile : t -> Tea_opt.Repack.profile
(** The retained traffic collected as an edge profile over the flat
    [base] image — orig-id space, {!Tea_opt.Repack.save_profile}-ready
    (the [serve --save-fleet-profile] payload).
    @raise Invalid_argument without [~base] or stream retention. *)

val metrics : t -> Tea_telemetry.Metrics.snapshot
(** Registry counters ([serve.sessions_completed], [serve.bytes_in],
    [serve.blocks], [serve.frames], [serve.disconnects], ...) and
    per-session histograms ([serve.session_bytes],
    [serve.session_blocks], [serve.session_ns_per_block],
    [serve.queue_depth]) merged with the pool's per-domain counters.
    Read when {!run} is not mid-cycle (e.g. after it returned). *)

val drift_distance : t -> (float * float) option
(** The last drift measurement against the attached comparator as
    [(distance, threshold)]; [None] when the server was created without
    [~drift] or no session has completed yet. *)

val exposition : t -> string
(** The Prometheus-style text exposition ({!Tea_observe.Exposition}) of
    {!metrics}, the installed dispatch-tier snapshot
    ({!Tea_core.Tierstat.snapshot}) and the drift gauge. This is exactly
    the payload a {!Frame.tag_scrape} connection receives; because
    scrapes are pure observers (never counted as sessions, no metric
    bumps), a scrape issued after the last session completed returns
    this string byte-for-byte. *)
