type counter = { mutable c : int }

(* Power-of-two buckets: bucket 0 holds values <= 0 (and 0 itself), bucket
   k >= 1 holds [2^(k-1), 2^k). 63 buckets cover the whole int range, so
   [observe] never range-checks. *)
let n_buckets = 64

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; histograms = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace t.counters name c;
      c

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = { h_count = 0; h_sum = 0; h_buckets = Array.make n_buckets 0 } in
      Hashtbl.replace t.histograms name h;
      h

let[@inline] add c n = c.c <- c.c + n

let[@inline] incr c = add c 1

let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 0 and v = ref v in
    while !v > 0 do
      Stdlib.incr k;
      v := !v lsr 1
    done;
    !k
  end

let[@inline] observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  Array.unsafe_set h.h_buckets b (1 + Array.unsafe_get h.h_buckets b)

let count t name n = add (counter t name) n

let observe_value t name v = observe (histogram t name) v

let bucket_label b =
  if b = 0 then "0"
  else Printf.sprintf "[%d,%d)" (1 lsl (b - 1)) (1 lsl b)

(* ---- snapshots: the immutable, mergeable view ---- *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : (int * int) list; (* (bucket index, count), sorted, non-zero *)
}

type snapshot = {
  s_counters : (string * int) list; (* sorted by name, zero entries omitted *)
  s_histograms : (string * hist_snapshot) list; (* sorted by name *)
}

let empty = { s_counters = []; s_histograms = [] }

let snapshot t =
  let counters =
    Hashtbl.fold
      (fun name c acc -> if c.c = 0 then acc else (name, c.c) :: acc)
      t.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        if h.h_count = 0 then acc
        else begin
          let buckets = ref [] in
          for b = n_buckets - 1 downto 0 do
            if h.h_buckets.(b) > 0 then buckets := (b, h.h_buckets.(b)) :: !buckets
          done;
          (name, { hs_count = h.h_count; hs_sum = h.h_sum; hs_buckets = !buckets })
          :: acc
        end)
      t.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { s_counters = counters; s_histograms = histograms }

(* Merge two sorted assoc lists with a value-merge function, dropping
   entries the merge maps to [None]. *)
let rec merge_assoc f a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: merge_assoc f ta b
      else if c > 0 then (kb, vb) :: merge_assoc f a tb
      else (ka, f va vb) :: merge_assoc f ta tb

let rec merge_buckets a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ba, ca) :: ta, (bb, cb) :: tb ->
      if ba < bb then (ba, ca) :: merge_buckets ta b
      else if bb < ba then (bb, cb) :: merge_buckets a tb
      else (ba, ca + cb) :: merge_buckets ta tb

let merge_hist a b =
  {
    hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum + b.hs_sum;
    hs_buckets = merge_buckets a.hs_buckets b.hs_buckets;
  }

let merge a b =
  {
    s_counters = merge_assoc ( + ) a.s_counters b.s_counters;
    s_histograms = merge_assoc merge_hist a.s_histograms b.s_histograms;
  }

let merge_all = List.fold_left merge empty

let equal (a : snapshot) (b : snapshot) = a = b

(* ---- quantile estimation over the log2 buckets ---- *)

(* Bucket value bounds for interpolation: bucket 0 is the point value 0,
   bucket k >= 1 spans [2^(k-1), 2^k). *)
let bucket_bounds b =
  if b = 0 then (0.0, 0.0)
  else (float_of_int (1 lsl (b - 1)), float_of_int (1 lsl b))

let quantile h q =
  if h.hs_count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    (* rank of the q-th sample, 1-based, ceiling so q = 0 and tiny q hit
       the first sample and q = 1 the last *)
    let rank =
      let r = ceil (q *. float_of_int h.hs_count) in
      if r < 1.0 then 1.0 else r
    in
    let rec find cum = function
      | [] -> (* unreachable: ranks never exceed the total *) 0.0
      | (b, n) :: rest ->
          let cum' = cum + n in
          if float_of_int cum' >= rank then begin
            let lo, hi = bucket_bounds b in
            (* linear interpolation within the bucket's value range *)
            let pos = (rank -. float_of_int cum) /. float_of_int n in
            lo +. (pos *. (hi -. lo))
          end
          else find cum' rest
    in
    find 0 h.hs_buckets
  end

let p50 h = quantile h 0.5
let p95 h = quantile h 0.95
let p99 h = quantile h 0.99

(* ---- exposition helpers ---- *)

let sanitize_name s =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let b = Bytes.of_string s in
  for i = 0 to Bytes.length b - 1 do
    if not (ok (Bytes.get b i)) then Bytes.set b i '_'
  done;
  let s' = Bytes.unsafe_to_string b in
  if s' = "" then "_"
  else if s'.[0] >= '0' && s'.[0] <= '9' then "_" ^ s'
  else s'

let escape_label s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  for i = 0 to n - 1 do
    match s.[i] with
    | '\\' -> Buffer.add_string b "\\\\"
    | '"' -> Buffer.add_string b "\\\""
    | '\n' -> Buffer.add_string b "\\n"
    | c -> Buffer.add_char b c
  done;
  Buffer.contents b

let find_counter s name = List.assoc_opt name s.s_counters

let find_histogram s name = List.assoc_opt name s.s_histograms
