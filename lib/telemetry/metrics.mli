(** Named counters and log-bucketed histograms with O(1) hot-path updates.

    A registry ({!t}) is a mutable, single-domain object: probe sites hold
    a {!counter} or {!histogram} handle and bump it with one or two plain
    int stores — no allocation, no locking. Cross-domain aggregation goes
    through immutable {!snapshot}s instead, which form the same algebra as
    {!Tea_parallel.Profile}: {!merge} is associative and commutative with
    {!empty} as identity (property-tested), so per-domain snapshots of a
    parallel run merge to exactly the sequential run's totals. *)

type t
(** A metrics registry. Not thread-safe: use one per domain and merge
    snapshots (see {!Probe}). *)

val create : unit -> t

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Find or register the counter [name]. Amortized O(1); call once per
    site and keep the handle for the hot path. *)

val incr : counter -> unit

val add : counter -> int -> unit

val count : t -> string -> int -> unit
(** [count t name n] = [add (counter t name) n] — for cold call sites. *)

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one sample: bumps count, sum and the sample's log2 bucket.
    Bucket 0 holds samples [<= 0]; bucket [k >= 1] holds
    [\[2^(k-1), 2^k)]. *)

val observe_value : t -> string -> int -> unit

val bucket_of : int -> int
(** The bucket index {!observe} files a sample under. *)

val bucket_label : int -> string
(** ["0"] or ["\[lo,hi)"] — the bucket's value range, for rendering. *)

(** {2 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : (int * int) list;
      (** (bucket index, sample count), sorted, zero buckets omitted *)
}

type snapshot = {
  s_counters : (string * int) list;
      (** sorted by name, zero counters omitted *)
  s_histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val empty : snapshot
(** The {!merge} identity. *)

val snapshot : t -> snapshot
(** An immutable copy of the registry's current totals. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum: counters add, histograms add count/sum/per-bucket.
    Associative, commutative, [empty]-neutral. *)

val merge_all : snapshot list -> snapshot

val equal : snapshot -> snapshot -> bool

val find_counter : snapshot -> string -> int option

val find_histogram : snapshot -> string -> hist_snapshot option

(** {2 Quantiles}

    Estimated from the log2 buckets: the bucket holding the requested
    rank is found by cumulative count, then the value is linearly
    interpolated inside the bucket's range ([\[2^(k-1), 2^k)]; bucket 0
    is the point value 0). Deterministic — a pure function of the
    snapshot — and exact whenever a bucket holds a single distinct
    value. *)

val quantile : hist_snapshot -> float -> float
(** [quantile h q] for [q] in [\[0, 1\]] (clamped); [0.] on an empty
    histogram. *)

val p50 : hist_snapshot -> float

val p95 : hist_snapshot -> float

val p99 : hist_snapshot -> float

(** {2 Exposition helpers} *)

val sanitize_name : string -> string
(** Map a registry name onto the exposition metric-name alphabet
    [\[A-Za-z0-9_:\]]: every other byte becomes ['_'], a leading digit
    gains a ['_'] prefix, [""] becomes ["_"]. Total and deterministic,
    so sorted registry names stay sorted and goldens are stable. *)

val escape_label : string -> string
(** Escape a label value for the Prometheus text format: backslash,
    double quote and newline become backslash-escaped two-byte
    sequences. *)
