type installation = {
  gen : int;
  spans : Span.sink option;
  mu : Mutex.t;
  mutable registries : Metrics.t list; (* one per domain that probed *)
}

(* The single global installation. Atomic so worker domains spawned after
   [install] observe it; [None] is the static no-op default. *)
let state : installation option Atomic.t = Atomic.make None

let generation = ref 0

(* Per-domain registry, tagged with the installation generation so a
   stale registry from an earlier install is never written into a newer
   one. *)
let dls : (int * Metrics.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let enabled () = Atomic.get state <> None

let install ?spans () =
  match Atomic.get state with
  | Some _ -> invalid_arg "Probe.install: already installed"
  | None ->
      incr generation;
      Atomic.set state
        (Some
           {
             gen = !generation;
             spans;
             mu = Mutex.create ();
             registries = [];
           })

let snapshot () =
  match Atomic.get state with
  | None -> Metrics.empty
  | Some g ->
      Mutex.lock g.mu;
      let regs = g.registries in
      Mutex.unlock g.mu;
      Metrics.merge_all (List.map Metrics.snapshot regs)

let uninstall () =
  let final = snapshot () in
  Atomic.set state None;
  final

let metrics () =
  match Atomic.get state with
  | None -> None
  | Some g -> (
      match Domain.DLS.get dls with
      | Some (gen, m) when gen = g.gen -> Some m
      | _ ->
          let m = Metrics.create () in
          Mutex.lock g.mu;
          g.registries <- m :: g.registries;
          Mutex.unlock g.mu;
          Domain.DLS.set dls (Some (g.gen, m));
          Some m)

let count name n =
  match metrics () with None -> () | Some m -> Metrics.count m name n

let observe name v =
  match metrics () with None -> () | Some m -> Metrics.observe_value m name v

let sink () =
  match Atomic.get state with None -> None | Some g -> g.spans

let with_span ?(args = []) ?post ?cycles name f =
  match Atomic.get state with
  | None | Some { spans = None; _ } -> f ()
  | Some { spans = Some sink; _ } ->
      let c0 = match cycles with None -> 0 | Some c -> c () in
      let sp = Span.enter sink ~args name in
      let finish v =
        let post_args = match post with None -> [] | Some p -> p v in
        let cycle_args =
          match cycles with
          | None -> []
          | Some c -> [ ("sim_cycles", string_of_int (c () - c0)) ]
        in
        Span.exit sink ~args:(post_args @ cycle_args) sp
      in
      (match f () with
      | v ->
          finish v;
          v
      | exception e ->
          Span.exit sink ~args:[ ("exception", Printexc.to_string e) ] sp;
          raise e)
