(** The pipeline's probe points, no-op by default.

    Instrumented code calls {!count}/{!observe}/{!with_span} (or grabs the
    calling domain's registry via {!metrics} and uses handles directly on
    hot paths). With nothing installed every entry point is a single
    atomic load and branch — the disabled pipeline stays byte-identical
    and its overhead within measurement noise, which the golden tests and
    the bench harness rely on.

    {!install} switches the whole process on: each domain lazily gets its
    own {!Metrics.t} registry (no cross-domain contention on increments),
    and {!snapshot} merges all per-domain registries with the
    associative/commutative {!Metrics.merge} — so a [--jobs n] run's
    merged counters equal the sequential run's, counter for counter.

    At most one installation is active at a time (second {!install}
    raises). Install from the driver before spawning worker domains. *)

val install : ?spans:Span.sink -> unit -> unit
(** Enable probing process-wide, optionally collecting spans into [spans].
    @raise Invalid_argument if already installed. *)

val uninstall : unit -> Metrics.snapshot
(** Disable probing and return the final merged snapshot. *)

val enabled : unit -> bool

val metrics : unit -> Metrics.t option
(** The calling domain's registry ([None] when disabled). Hot loops call
    this once per batch, pull counter/histogram handles, and bump those. *)

val snapshot : unit -> Metrics.snapshot
(** Merge of every domain's registry so far ({!Metrics.empty} when
    disabled). *)

val count : string -> int -> unit
(** Bump a named counter on the calling domain ([()] when disabled). For
    cold call sites — recording decisions, phase changes, CLI wrappers. *)

val observe : string -> int -> unit
(** Record a histogram sample ([()] when disabled). *)

val sink : unit -> Span.sink option
(** The installed span sink, if any. *)

val with_span :
  ?args:(string * string) list ->
  ?post:('a -> (string * string) list) ->
  ?cycles:(unit -> int) ->
  string ->
  (unit -> 'a) ->
  'a
(** Run a thunk inside a span (plain call when disabled or no sink).
    [post] derives extra args from the result (e.g. a table cell's
    simulated Mcycles); [cycles] is sampled at entry and exit and the
    delta recorded as a ["sim_cycles"] arg — the span is stamped with
    both wall-clock and simulated time. *)
