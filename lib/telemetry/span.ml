type event = {
  e_name : string;
  e_tid : int;
  e_ts : float; (* seconds since sink creation *)
  e_dur : float; (* seconds *)
  e_depth : int; (* nesting depth at entry, per tid *)
  e_seq : int; (* global entry order: parents before children, siblings in call order *)
  e_args : (string * string) list;
}

type sink = {
  mu : Mutex.t;
  t0 : float;
  seq : int Atomic.t; (* next entry sequence number *)
  mutable events : event list; (* completion order, newest first *)
}

type span = {
  sp_name : string;
  sp_tid : int;
  sp_ts : float;
  sp_depth : int;
  sp_seq : int;
  sp_args : (string * string) list;
}

(* Per-domain nesting depth. The key is global (DLS keys cannot be
   per-sink) — fine because Probe installs at most one sink at a time. *)
let depth_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let now () = Unix.gettimeofday ()

let create () =
  { mu = Mutex.create (); t0 = now (); seq = Atomic.make 0; events = [] }

let enter sink ?(args = []) name =
  let tid = (Domain.self () :> int) in
  let depth = Domain.DLS.get depth_key in
  Domain.DLS.set depth_key (depth + 1);
  { sp_name = name; sp_tid = tid; sp_ts = now () -. sink.t0; sp_depth = depth;
    sp_seq = Atomic.fetch_and_add sink.seq 1; sp_args = args }

let exit sink ?(args = []) span =
  Domain.DLS.set depth_key (Domain.DLS.get depth_key - 1);
  let e =
    {
      e_name = span.sp_name;
      e_tid = span.sp_tid;
      e_ts = span.sp_ts;
      e_dur = now () -. sink.t0 -. span.sp_ts;
      e_depth = span.sp_depth;
      e_seq = span.sp_seq;
      e_args = span.sp_args @ args;
    }
  in
  Mutex.lock sink.mu;
  sink.events <- e :: sink.events;
  Mutex.unlock sink.mu

let with_span sink ?args name f =
  let sp = enter sink ?args name in
  match f () with
  | v ->
      exit sink sp;
      v
  | exception e ->
      exit sink ~args:[ ("exception", Printexc.to_string e) ] sp;
      raise e

let events sink =
  Mutex.lock sink.mu;
  let evs = sink.events in
  Mutex.unlock sink.mu;
  (* entry sequence breaks timestamp ties: gettimeofday stamps a whole
     subtree of sub-microsecond spans identically, but parents always
     enter before children and siblings enter in call order *)
  List.stable_sort
    (fun a b ->
      match compare a.e_tid b.e_tid with
      | 0 -> compare (a.e_ts, a.e_seq) (b.e_ts, b.e_seq)
      | c -> c)
    evs

(* ---- JSON export (Chrome trace-event format) ---- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_json e =
  let args =
    match e.e_args with
    | [] -> ""
    | args ->
        let fields =
          List.map
            (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
            args
        in
        Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"dur\":%.1f%s}"
    (escape e.e_name) e.e_tid (1e6 *. e.e_ts) (1e6 *. e.e_dur) args

let to_chrome_json sink =
  let evs = List.map event_json (events sink) in
  Printf.sprintf
    "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\"}\n"
    (String.concat ",\n" evs)

let to_jsonl sink =
  String.concat "" (List.map (fun e -> event_json e ^ "\n") (events sink))

(* ---- nesting validation ---- *)

(* Spans are recorded with begin/end stack discipline per domain, so for
   each tid the events, ordered by (start time, depth), must nest: an
   event at depth d+1 lies inside the most recent open event at depth d.
   The stack is unwound by recorded depth, not by timestamp — gettimeofday
   can stamp a whole subtree of sub-microsecond spans identically, so
   timestamps only bound containment (with tolerance), never structure. *)
let validate sink =
  let eps = 1e-9 in
  let check_tid evs =
    (* stack of (depth, end_ts) of currently open enclosing spans *)
    let rec go stack = function
      | [] -> Ok ()
      | e :: rest -> (
          (* anything at e's depth or deeper is a prior sibling subtree
             and must have ended by the time e starts *)
          let rec close = function
            | (d, end_ts) :: tl when d >= e.e_depth ->
                if end_ts > e.e_ts +. eps then
                  Error
                    (Printf.sprintf
                       "span %S starts inside a prior span at depth %d"
                       e.e_name d)
                else close tl
            | stack -> Ok stack
          in
          match close stack with
          | Error _ as err -> err
          | Ok stack ->
              if List.length stack <> e.e_depth then
                Error
                  (Printf.sprintf
                     "span %S at depth %d but %d enclosing spans open"
                     e.e_name e.e_depth (List.length stack))
              else begin
                match stack with
                | (_, parent_end) :: _
                  when e.e_ts +. e.e_dur > parent_end +. eps ->
                    Error
                      (Printf.sprintf "span %S overruns its enclosing span"
                         e.e_name)
                | _ -> go ((e.e_depth, e.e_ts +. e.e_dur) :: stack) rest
              end)
    in
    go [] evs
  in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let prev = Option.value (Hashtbl.find_opt by_tid e.e_tid) ~default:[] in
      Hashtbl.replace by_tid e.e_tid (e :: prev))
    (events sink);
  Hashtbl.fold
    (fun _tid evs acc ->
      match acc with Error _ -> acc | Ok () -> check_tid (List.rev evs))
    by_tid (Ok ())
