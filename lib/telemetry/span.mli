(** Hierarchical span tracing.

    A {!sink} collects completed spans from any number of domains (one
    mutex-protected list append per span — spans are coarse, phases and
    table cells, never per-block work). Each span is stamped with the
    wall-clock interval it covered; callers attach simulated-cycle deltas
    and other labels via [args] (see {!Probe.with_span}). Export is Chrome
    trace-event JSON ([chrome://tracing], Perfetto) or JSONL.

    Nesting is per-domain begin/end stack discipline, recorded as an
    explicit depth so {!validate} can check it structurally after the
    fact. *)

type sink

type span

type event = {
  e_name : string;
  e_tid : int;  (** originating domain id *)
  e_ts : float;  (** seconds since the sink was created *)
  e_dur : float;  (** seconds *)
  e_depth : int;  (** nesting depth at entry, within [e_tid] *)
  e_seq : int;  (** entry order across the sink: parents before children *)
  e_args : (string * string) list;
}

val create : unit -> sink

val enter : sink -> ?args:(string * string) list -> string -> span
(** Open a span on the calling domain. Must be closed with {!exit} in
    LIFO order per domain. *)

val exit : sink -> ?args:(string * string) list -> span -> unit
(** Close the span; [args] are appended to the ones given at {!enter}. *)

val with_span : sink -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [enter]/[exit] around a thunk; an escaping exception still closes the
    span (tagged with an ["exception"] arg) and is re-raised. *)

val events : sink -> event list
(** Completed spans, sorted by (tid, start time, entry order) — parents
    before their children, siblings in call order even when gettimeofday
    stamps them identically. *)

val to_chrome_json : sink -> string
(** The Chrome trace-event format: one ["ph":"X"] complete event per span,
    timestamps in microseconds, wrapped as [{"traceEvents": [...]}]. *)

val to_jsonl : sink -> string
(** One JSON event object per line. *)

val validate : sink -> (unit, string) result
(** Check that spans nest properly within every domain: each span lies
    inside its enclosing span and its recorded depth matches the number
    of spans open around it. *)
