module Block = Tea_cfg.Block
module Vec = Tea_util.Vec

module Diag = struct
  let trunks_started = ref 0
  let extends_started = ref 0
  let paths_completed = ref 0
  let paths_aborted = ref 0
  let exits_seen = ref 0
  let abort_lens : int list ref = ref []
  let abort_info : (int * int * bool) list ref = ref []  (* anchor, first-block, trunk *)
  let abort_why : (string * int * int) list ref = ref []  (* reason, dst/plen, anchor *)
  let trig_in = ref 0
  let trig_out = ref 0

  let reset () =
    trunks_started := 0;
    extends_started := 0;
    paths_completed := 0;
    paths_aborted := 0;
    exits_seen := 0;
    abort_lens := [];
    abort_info := [];
    abort_why := [];
    trig_in := 0;
    trig_out := 0
end

module Make (P : sig
  val name : string
  val compact : bool
end) =
struct
  type node = {
    nid : int;
    block : Block.t;
    parent : int;  (* -1 for the root *)
    mutable children : (int * int) list;  (* (label address, node id) *)
  }

  type tree = {
    trace_id : int;
    anchor : int;
    nodes : node Vec.t;  (* node 0 is the root (the anchor block) *)
  }

  type pending =
    | Trunk
    | Extend of tree * int

  type rec_state = {
    rtree : tree;
    graft : int;
    mutable path_rev : Block.t list;
    mutable plen : int;
    is_trunk : bool;
    visits : (int, int) Hashtbl.t;
        (* backward-target crossings along this path: the unroll bound *)
  }

  type t = {
    cfg : Recorder.config;
    heads : int Hotness.t;
    exits : (int * int * int) Hotness.t;
    trees : (int, tree) Hashtbl.t;  (* anchor address -> tree *)
    loop_headers : (int, unit) Hashtbl.t;
    blacklist : (int * int * int, unit) Hashtbl.t;
        (* (trace, node, target) extensions considered hopeless *)
    failures : (int * int * int, int) Hashtbl.t;
    proven : (int * int * int, unit) Hashtbl.t;
        (* a recording from this exit completed at least once: a later
           unlucky abort (e.g. the enclosing loop happened to finish
           mid-recording) must not poison the direction *)
    dead_anchors : (int, unit) Hashtbl.t;  (* trunk anchors that aborted *)
    mutable next_id : int;
    mutable anchors_rev : int list;  (* registration order *)
    mutable cur : (tree * int) option;  (* shadow position while Executing *)
    mutable pending : pending option;
    mutable recording : rec_state option;
  }

  let name = P.name

  let create cfg =
    {
      cfg;
      heads = Hotness.create ~threshold:cfg.Recorder.hot_threshold;
      exits = Hotness.create ~threshold:cfg.Recorder.exit_threshold;
      trees = Hashtbl.create 32;
      loop_headers = Hashtbl.create 64;
      blacklist = Hashtbl.create 64;
      failures = Hashtbl.create 64;
      proven = Hashtbl.create 64;
      dead_anchors = Hashtbl.create 16;
      next_id = 0;
      anchors_rev = [];
      cur = None;
      pending = None;
      recording = None;
    }

  let mark_loop_header t ~current ~dst =
    match current with
    | Some src when Hotness.is_backward ~src ~dst ->
        Hashtbl.replace t.loop_headers dst ()
    | Some _ | None -> ()

  let node tree nid = Vec.get tree.nodes nid

  let tree_size tree = Vec.length tree.nodes

  let follow tree nid dst = List.assoc_opt dst (node tree nid).children

  let room_for t tree extra =
    tree_size tree + extra <= t.cfg.Recorder.max_tree_nodes

  (* Should a new trunk start at [next]? (No tree is anchored there.) *)
  let maybe_trunk t ~current ~next =
    let dst = next.Block.start in
    match current with
    | None -> false
    | Some src ->
        (not (Hashtbl.mem t.dead_anchors dst))
        && Hotness.is_backward ~src ~dst
        && Hotness.bump t.heads dst
        &&
        begin
          t.pending <- Some Trunk;
          true
        end

  let trigger t ~current ~next =
    let dst = next.Block.start in
    mark_loop_header t ~current ~dst;
    (match t.cur with Some _ -> incr Diag.trig_in | None -> incr Diag.trig_out);
    match t.cur with
    | Some (tree, n) -> (
        match follow tree n dst with
        | Some c ->
            t.cur <- Some (tree, c);
            false
        | None ->
            if dst = tree.anchor then begin
              t.cur <- Some (tree, 0);
              false
            end
            else begin
              (* Baseline trace trees (TT) have no nested-tree calls:
                 structure anchored elsewhere gets *duplicated* into the
                 current tree, so extension is tried before transferring to
                 another tree (the Table 1 explosion). Compact trace trees
                 exist to avoid exactly that duplication, so they transfer
                 first. *)
              t.cur <- None;
              incr Diag.exits_seen;
              let transfer () =
                match Hashtbl.find_opt t.trees dst with
                | Some other ->
                    t.cur <- Some (other, 0);
                    Some false
                | None -> None
              in
              let extend () =
                if
                  room_for t tree 1
                  && (not (Hashtbl.mem t.blacklist (tree.trace_id, n, dst)))
                  && Hotness.bump t.exits (tree.trace_id, n, dst)
                then begin
                  incr Diag.extends_started;
                  t.pending <- Some (Extend (tree, n));
                  Some true
                end
                else None
              in
              let first, second = if P.compact then (transfer, extend) else (extend, transfer) in
              match first () with
              | Some r -> r
              | None -> (
                  match second () with
                  | Some r -> r
                  | None -> maybe_trunk t ~current ~next)
            end)
    | None -> (
        match Hashtbl.find_opt t.trees dst with
        | Some tree ->
            t.cur <- Some (tree, 0);
            false
        | None -> maybe_trunk t ~current ~next)

  let start t ~current:_ ~next =
    match t.pending with
    | None -> invalid_arg (P.name ^ ".start: no pending recording")
    | Some Trunk ->
        incr Diag.trunks_started;
        let id = t.next_id in
        t.next_id <- id + 1;
        let nodes = Vec.create () in
        Vec.push nodes { nid = 0; block = next; parent = -1; children = [] };
        let tree = { trace_id = id; anchor = next.Block.start; nodes } in
        t.pending <- None;
        t.recording <-
          Some
            {
              rtree = tree;
              graft = 0;
              path_rev = [];
              plen = 0;
              is_trunk = true;
              visits = Hashtbl.create 8;
            }
    | Some (Extend (tree, n)) ->
        t.pending <- None;
        t.recording <-
          Some
            {
              rtree = tree;
              graft = n;
              path_rev = [ next ];
              plen = 1;
              is_trunk = false;
              visits = Hashtbl.create 8;
            }

  let to_trace tree =
    let n = tree_size tree in
    let blocks = Array.init n (fun i -> (Vec.get tree.nodes i).block) in
    let succs = Array.init n (fun i -> List.map snd (Vec.get tree.nodes i).children) in
    Trace.make ~id:tree.trace_id ~kind:P.name blocks succs

  type close_target =
    | To_root
    | To_path_index of int   (* index into the recorded path *)
    | To_graft_chain of int  (* an existing node id *)

  let exit_key r =
    match List.rev r.path_rev with
    | b :: _ -> Some (r.rtree.trace_id, r.graft, b.Block.start)
    | [] -> None

  (* Graft the recorded path onto the tree and close it with a back edge. *)
  let complete t r close =
    (match exit_key r with
    | Some key when not r.is_trunk -> Hashtbl.replace t.proven key ()
    | Some _ | None -> ());
    let tree = r.rtree in
    let path = Array.of_list (List.rev r.path_rev) in
    let ids = Array.make (Array.length path) (-1) in
    let p = ref r.graft in
    Array.iteri
      (fun i b ->
        let nid = tree_size tree in
        Vec.push tree.nodes { nid; block = b; parent = !p; children = [] };
        let parent = node tree !p in
        assert (not (List.mem_assoc b.Block.start parent.children));
        parent.children <- parent.children @ [ (b.Block.start, nid) ];
        ids.(i) <- nid;
        p := nid)
      path;
    let last = node tree !p in
    let target_nid =
      match close with
      | To_root -> 0
      | To_path_index i -> ids.(i)
      | To_graft_chain nid -> nid
    in
    let label = (node tree target_nid).block.Block.start in
    if not (List.mem_assoc label last.children) then
      last.children <- last.children @ [ (label, target_nid) ];
    if not (Hashtbl.mem t.trees tree.anchor) then begin
      Hashtbl.replace t.trees tree.anchor tree;
      t.anchors_rev <- tree.anchor :: t.anchors_rev
    end;
    incr Diag.paths_completed;
    t.recording <- None;
    t.cur <- Some (tree, target_nid);
    to_trace tree

  (* CTT: find a loop-header occurrence of [dst] on the current root path —
     first in the freshly recorded path (innermost = latest), then walking
     the graft chain toward the root. *)
  let find_on_root_path t r dst =
    if not (Hashtbl.mem t.loop_headers dst) then None
    else
      let path = Array.of_list (List.rev r.path_rev) in
      let rec scan_path i =
        if i < 0 then None
        else if path.(i).Block.start = dst then Some (To_path_index i)
        else scan_path (i - 1)
      in
      match scan_path (Array.length path - 1) with
      | Some c -> Some c
      | None ->
          let tree = r.rtree in
          let rec up nid =
            if nid < 0 then None
            else
              let nd = node tree nid in
              if nd.block.Block.start = dst then Some (To_graft_chain nid)
              else up nd.parent
          in
          up r.graft

  let add t ~current ~next =
    match t.recording with
    | None -> invalid_arg (P.name ^ ".add: not recording")
    | Some r ->
        let dst = next.Block.start in
        mark_loop_header t ~current:(Some current) ~dst;
        if dst = r.rtree.anchor then `Done (Some (complete t r To_root))
        else begin
          let compact_close =
            if P.compact then find_on_root_path t r dst else None
          in
          let over_unroll =
            if Hotness.is_backward ~src:current ~dst then begin
              let c = 1 + Option.value (Hashtbl.find_opt r.visits dst) ~default:0 in
              Hashtbl.replace r.visits dst c;
              if c > t.cfg.Recorder.max_inner_unroll then begin
                Diag.abort_why := ("unroll", dst, r.rtree.anchor) :: !Diag.abort_why;
                true
              end
              else false
            end
            else false
          in
          match compact_close with
          | Some close -> `Done (Some (complete t r close))
          | None ->
              if
                (if (not over_unroll) && r.plen >= t.cfg.Recorder.max_path_blocks then begin
                   Diag.abort_why := ("cap", r.plen, r.rtree.anchor) :: !Diag.abort_why;
                   true
                 end
                 else over_unroll)
                || r.plen >= t.cfg.Recorder.max_path_blocks
                || not (room_for t r.rtree (r.plen + 1))
              then begin
                (* Abandon the path; an unregistered trunk dies with it.
                   Blacklist the exit (or the anchor) so the recorder does
                   not retry a hopeless recording forever — real trace-tree
                   systems do the same for aborted recordings. *)
                incr Diag.paths_aborted;
                Tea_telemetry.Probe.count "recorder.path_aborted" 1;
                Tea_telemetry.Probe.observe "recorder.aborted_path_len" r.plen;
                Diag.abort_lens := r.plen :: !Diag.abort_lens;
                let first =
                  match List.rev r.path_rev with
                  | b :: _ -> b.Block.start
                  | [] -> -1
                in
                Diag.abort_info :=
                  (r.rtree.anchor, first, r.is_trunk) :: !Diag.abort_info;
                (if r.is_trunk then Hashtbl.replace t.dead_anchors r.rtree.anchor ()
                 else
                   let key = (r.rtree.trace_id, r.graft, first) in
                   let n = 1 + Option.value (Hashtbl.find_opt t.failures key) ~default:0 in
                   Hashtbl.replace t.failures key n;
                   if n >= 3 && not (Hashtbl.mem t.proven key) then begin
                     Tea_telemetry.Probe.count "recorder.blacklisted" 1;
                     Hashtbl.replace t.blacklist key ()
                   end);
                t.recording <- None;
                t.cur <- None;
                `Done None
              end
              else begin
                r.path_rev <- next :: r.path_rev;
                r.plen <- r.plen + 1;
                `Continue
              end
        end

  let abort t =
    t.recording <- None;
    t.pending <- None;
    None

  let traces t =
    List.rev_map
      (fun anchor -> to_trace (Hashtbl.find t.trees anchor))
      t.anchors_rev
end

module Tt = Make (struct
  let name = "tt"
  let compact = false
end)

module Ctt = Make (struct
  let name = "ctt"
  let compact = true
end)
