module Pc_trace = Tea_core.Pc_trace
module Splitmix = Tea_util.Splitmix

type stream = {
  asid : int;
  name : string;
  starts : int array;
  insns : int array;
  len : int;
}

type schedule = Round_robin | Random_sched of int

let stream ~asid ~name ~starts ~insns ~len =
  if asid < 0 then invalid_arg "Scenario.stream: negative asid";
  if len < 0 || len > Array.length starts || len > Array.length insns then
    invalid_arg "Scenario.stream: len out of range";
  { asid; name; starts; insns; len }

let load_stream ~asid ~name path =
  let starts = ref (Array.make 1024 0) and insns = ref (Array.make 1024 0) in
  let n = ref 0 in
  Pc_trace.fold path () (fun () ~start ~insns:ins ->
      let cap = Array.length !starts in
      if !n = cap then begin
        let s' = Array.make (2 * cap) 0 and i' = Array.make (2 * cap) 0 in
        Array.blit !starts 0 s' 0 !n;
        Array.blit !insns 0 i' 0 !n;
        starts := s';
        insns := i'
      end;
      !starts.(!n) <- start;
      !insns.(!n) <- ins;
      incr n);
  stream ~asid ~name ~starts:!starts ~insns:!insns ~len:!n

(* Emitters track the stream's current asid themselves (a v3 stream opens
   in asid 0), so a scenario only pays a Switch record when the scheduled
   asid actually changes. *)
type emitter = { emit : Pc_trace.event -> unit; mutable cur : int }

let switch_to em asid =
  if asid <> em.cur then begin
    em.emit (Pc_trace.Switch { asid });
    em.cur <- asid
  end

let block_of em s i =
  switch_to em s.asid;
  em.emit (Pc_trace.Block { start = s.starts.(i); insns = s.insns.(i) })

let check_streams fn streams =
  if streams = [] then invalid_arg (fn ^ ": no streams");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.asid then
        invalid_arg (fn ^ ": duplicate asid " ^ string_of_int s.asid);
      Hashtbl.add seen s.asid ())
    streams

let interleave ?(quantum = 8) ?(schedule = Round_robin) streams emit =
  if quantum < 1 then invalid_arg "Scenario.interleave: quantum < 1";
  check_streams "Scenario.interleave" streams;
  let em = { emit; cur = 0 } in
  let streams = Array.of_list streams in
  let pos = Array.map (fun _ -> 0) streams in
  let live () =
    let l = ref [] in
    Array.iteri
      (fun i s -> if pos.(i) < s.len then l := i :: !l)
      streams;
    List.rev !l
  in
  let turn i =
    let s = streams.(i) in
    let n = min quantum (s.len - pos.(i)) in
    for k = pos.(i) to pos.(i) + n - 1 do
      block_of em s k
    done;
    pos.(i) <- pos.(i) + n
  in
  match schedule with
  | Round_robin ->
      let n = Array.length streams in
      let total = Array.fold_left (fun acc s -> acc + s.len) 0 streams in
      let emitted = ref 0 in
      let i = ref 0 in
      while !emitted < total do
        let j = !i mod n in
        if pos.(j) < streams.(j).len then begin
          let before = pos.(j) in
          turn j;
          emitted := !emitted + (pos.(j) - before)
        end;
        incr i
      done
  | Random_sched seed ->
      let g = Splitmix.create seed in
      let rec go () =
        match live () with
        | [] -> ()
        | l ->
            turn (List.nth l (Splitmix.int g (List.length l)));
            go ()
      in
      go ()

let smc ?(period = 64) s emit =
  if period < 1 then invalid_arg "Scenario.smc: period < 1";
  let em = { emit; cur = 0 } in
  for i = 0 to s.len - 1 do
    block_of em s i;
    if (i + 1) mod period = 0 && i + 1 < s.len then
      em.emit (Pc_trace.Invalidate { asid = s.asid })
  done

let interrupt ?at ?every s emit =
  let em = { emit; cur = 0 } in
  let hit =
    match every with
    | Some n ->
        if n < 1 then invalid_arg "Scenario.interrupt: every < 1";
        fun i -> (i + 1) mod n = 0
    | None ->
        let at = match at with Some a -> a | None -> s.len / 2 in
        if at < 0 then invalid_arg "Scenario.interrupt: negative offset";
        fun i -> i + 1 = at
  in
  for i = 0 to s.len - 1 do
    block_of em s i;
    if hit i && i + 1 < s.len then em.emit Pc_trace.Interrupt
  done

let write_file path f =
  let w = Pc_trace.open_writer ~format:Pc_trace.V3 path in
  let n = ref 0 in
  Fun.protect
    ~finally:(fun () -> Pc_trace.close_writer w)
    (fun () ->
      f (fun ev ->
          Pc_trace.write_event w ev;
          incr n));
  !n

let events f =
  let acc = ref [] in
  f (fun ev -> acc := ev :: !acc);
  List.rev !acc
