(** Adversarial replay scenarios over recorded block streams.

    The paper's automata assume one clean PC stream per guest; real DBT
    traffic is interleaved across address spaces, invalidated by
    self-modifying code, and interrupted mid-trace. Each builder here
    turns recorded per-workload block streams into a {!Tea_core.Pc_trace}
    v3 event stream exhibiting one of those hazards, deterministically —
    so replay equivalence (demuxed vs. isolated, sharded vs. sequential)
    can be gated on exactly the adversarial cases.

    Builders are emit-style: they call a callback per event, so the same
    scenario streams straight into a file ({!write_file}), a
    {!Tea_core.Multi_replayer}, or a list ({!events}). *)

type stream = {
  asid : int;
  name : string;
  starts : int array;
  insns : int array;
  len : int;
}
(** One workload's recorded block stream; only [0..len-1] is valid. *)

val stream :
  asid:int -> name:string -> starts:int array -> insns:int array -> len:int ->
  stream
(** Validated constructor. @raise Invalid_argument on a negative asid or
    [len] out of range. *)

val load_stream : asid:int -> name:string -> string -> stream
(** Decode a single-stream {!Tea_core.Pc_trace} file (as written by
    [Tea_pinsim.Trace_capture.record]) into a stream stamped with the
    asid. @raise Tea_core.Pc_trace.Corrupt on bad framing. *)

type schedule =
  | Round_robin  (** fixed rotation over live streams *)
  | Random_sched of int  (** seeded uniform pick per turn (SplitMix64) *)

val interleave :
  ?quantum:int ->
  ?schedule:schedule ->
  stream list ->
  (Tea_core.Pc_trace.event -> unit) ->
  unit
(** Multi-process interleaving: schedule quanta of up to [quantum]
    (default 8) blocks over the streams until all are drained, emitting a
    [Switch] whenever the scheduled asid changes (a v3 stream opens in
    asid 0, so a leading switch appears only when the first quantum's
    asid is nonzero). Asids must be distinct.
    @raise Invalid_argument on an empty list, duplicate asids, or
    [quantum < 1]. *)

val smc :
  ?period:int -> stream -> (Tea_core.Pc_trace.event -> unit) -> unit
(** Self-modifying code: every [period] (default 64) blocks the asid's
    translations are patched, emitting an [Invalidate] — the automaton
    drops to NTE and re-learns its traces from their heads (the re-trace
    is the replay itself). No trailing invalidation after the last
    block. @raise Invalid_argument if [period < 1]. *)

val interrupt :
  ?at:int -> ?every:int -> stream -> (Tea_core.Pc_trace.event -> unit) -> unit
(** Asynchronous signal delivery: an [Interrupt] cutting the trace body
    after block offset [at] (default [len / 2]), or after every [every]
    blocks when given (overrides [at]). Cuts falling at or beyond the end
    of the stream are dropped. @raise Invalid_argument on a negative
    [at] or [every < 1]. *)

val write_file : string -> ((Tea_core.Pc_trace.event -> unit) -> unit) -> int
(** [write_file path scenario] streams the scenario into a v3 trace file
    and returns the number of events written — e.g.
    [write_file p (interleave ~quantum:4 streams)]. *)

val events :
  ((Tea_core.Pc_trace.event -> unit) -> unit) -> Tea_core.Pc_trace.event list
(** Collect a scenario into a list (tests). *)
