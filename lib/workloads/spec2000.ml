(* Each profile derives from a template per benchmark family; the comments
   state which table rows the knobs are aimed at. *)

let base =
  {
    Proggen.default with
    Proggen.func_budget = 2200;
    body_len = (4, 10);
    outer_iters = (60, 130);
    inner_iters = (5, 12);
    phases = 3;
    phase_iters = 90;
    calls_per_iter = 2;
  }

(* CFP2000: deep counted loops, biased branches, near-total coverage. *)
let fp name seed =
  {
    base with
    Proggen.name;
    seed;
    hot_funcs = 6;
    cold_funcs = 4;
    nest_depth = 3;
    p_loop = 0.45;
    p_diamond = 0.12;
    p_switch = 0.02;
    p_call = 0.08;
    p_list = 0.03;
    p_rep = 0.04;
    mask_bits = (3, 5);
    cold_elements = (3, 6);
    cold_iters = (10, 30);
    inner_iters = (9, 18);
  }

(* CINT2000: branchier, flatter loops, more irregular control flow. *)
let int_ name seed =
  {
    base with
    Proggen.name;
    seed;
    hot_funcs = 10;
    cold_funcs = 12;
    nest_depth = 2;
    p_loop = 0.3;
    p_diamond = 0.3;
    p_switch = 0.08;
    p_call = 0.12;
    p_list = 0.05;
    p_rep = 0.02;
    mask_bits = (1, 3);
    cold_elements = (4, 8);
    cold_iters = (12, 35);
  }

let all =
  [
    (* --- CFP2000 --- *)
    fp "168.wupwise" 168;
    { (fp "171.swim" 171) with Proggen.hot_funcs = 5; phase_iters = 120 };
    { (fp "172.mgrid" 172) with Proggen.nest_depth = 3; p_loop = 0.55 };
    { (fp "173.applu" 173) with Proggen.hot_funcs = 7; p_loop = 0.5 };
    (* mesa: slightly branchy FP — the one benchmark whose replay coverage
       dips below DBT's in Table 2. *)
    { (fp "177.mesa" 177) with Proggen.p_diamond = 0.22; p_rep = 0.08; hot_funcs = 8 };
    { (fp "178.galgel" 178) with Proggen.hot_funcs = 11; phases = 4 };
    { (fp "179.art" 179) with Proggen.p_list = 0.18; hot_funcs = 4 };
    { (fp "183.equake" 183) with Proggen.phase_iters = 50; hot_funcs = 4 };
    { (fp "187.facerec" 187) with Proggen.hot_funcs = 8 };
    { (fp "188.ammp" 188) with Proggen.p_list = 0.12; hot_funcs = 7 };
    (* lucas: the low-coverage FP row (~90%): heavy once-run sprawl. *)
    {
      (fp "189.lucas" 189) with
      Proggen.cold_funcs = 42;
      cold_elements = (8, 14);
      cold_iters = (20, 42);
      phase_iters = 55;
    };
    (* fma3d: ~94% coverage, large code. *)
    {
      (fp "191.fma3d" 191) with
      Proggen.hot_funcs = 14;
      cold_funcs = 26;
      cold_elements = (6, 12);
      phase_iters = 60;
    };
    { (fp "200.sixtrack" 200) with Proggen.hot_funcs = 16; phases = 4; p_diamond = 0.18 };
    { (fp "301.apsi" 301) with Proggen.hot_funcs = 12; phases = 4 };
    (* --- CINT2000 --- *)
    (* gzip: even-odds diamonds plus tiny inner loops inside hot loops —
       trace trees unroll the inner iterations into combinationally many
       paths (Table 1's TT blow-up); CTT closes them with back edges. *)
    {
      (int_ "164.gzip" 164) with
      Proggen.nest_depth = 2;
      p_diamond = 0.45;
      p_loop = 0.35;
      mask_bits = (1, 2);
      hot_funcs = 6;
      func_budget = 6500;
      outer_iters = (30, 50);
      inner_iters = (2, 4);
      p_var_trip = 0.75;
      p_switch = 0.1;
      p_list = 0.0;
      p_rep = 0.0;
      p_call = 0.0;
      phase_iters = 65;
    };
    { (int_ "175.vpr" 175) with Proggen.p_diamond = 0.35; hot_funcs = 9 };
    (* gcc: the big-code row - most traces, heaviest JIT. *)
    {
      (int_ "176.gcc" 176) with
      Proggen.hot_funcs = 60;
      cold_funcs = 70;
      phases = 8;
      phase_iters = 55;
      calls_per_iter = 3;
      p_switch = 0.16;
      func_budget = 1100;
      cold_elements = (6, 12);
    };
    (* mcf: tiny pointer-chasing kernel. *)
    {
      (int_ "181.mcf" 181) with
      Proggen.hot_funcs = 3;
      cold_funcs = 3;
      p_list = 0.4;
      p_switch = 0.0;
      phase_iters = 120;
    };
    (* crafty: big branchy/switchy code, ~95.5% coverage. *)
    {
      (int_ "186.crafty" 186) with
      Proggen.hot_funcs = 20;
      cold_funcs = 30;
      p_switch = 0.2;
      p_diamond = 0.35;
      mask_bits = (1, 2);
      cold_elements = (6, 10);
      phase_iters = 60;
    };
    { (int_ "197.parser" 197) with Proggen.p_diamond = 0.42; hot_funcs = 12; phases = 4 };
    (* eon: C++-ish — many functions, heavy once-run sprawl (~91%). *)
    {
      (int_ "252.eon" 252) with
      Proggen.hot_funcs = 24;
      cold_funcs = 60;
      p_call = 0.22;
      cold_elements = (8, 14);
      cold_iters = (18, 40);
      phase_iters = 55;
      phases = 4;
    };
    (* perlbmk: biggest sprawl (~83% coverage), switch-dispatch heavy. *)
    {
      (int_ "253.perlbmk" 253) with
      Proggen.hot_funcs = 28;
      cold_funcs = 110;
      p_switch = 0.2;
      cold_elements = (9, 16);
      cold_iters = (20, 44);
      phases = 5;
      phase_iters = 45;
    };
    (* gap: ~88% coverage, call-heavy. *)
    {
      (int_ "254.gap" 254) with
      Proggen.hot_funcs = 16;
      cold_funcs = 66;
      p_call = 0.2;
      cold_elements = (8, 14);
      cold_iters = (18, 40);
      phase_iters = 55;
    };
    (* vortex: big code, call-heavy, but high coverage. *)
    {
      (int_ "255.vortex" 255) with
      Proggen.hot_funcs = 26;
      cold_funcs = 10;
      p_call = 0.26;
      phases = 4;
      phase_iters = 60;
    };
    (* bzip2: the worst trace-tree blow-up in Table 1 — maximal diamond
       entropy and tiny inner loops. *)
    {
      (int_ "256.bzip2" 256) with
      Proggen.nest_depth = 2;
      p_diamond = 0.5;
      p_loop = 0.38;
      mask_bits = (1, 1);
      hot_funcs = 7;
      func_budget = 7500;
      outer_iters = (28, 45);
      inner_iters = (2, 4);
      p_var_trip = 0.9;
      p_switch = 0.12;
      switch_ways = 8;
      p_list = 0.0;
      p_rep = 0.0;
      p_call = 0.0;
      phase_iters = 70;
    };
    { (int_ "300.twolf" 300) with Proggen.p_diamond = 0.38; hot_funcs = 10; phases = 4 };
  ]

let names = List.map (fun p -> p.Proggen.name) all

let by_name n = List.find_opt (fun p -> p.Proggen.name = n) all

(* The generated-image cache is the one piece of global mutable state in
   the workload layer; the parallel table driver calls [image] from
   several domains, so it is mutex-guarded. Generation is deterministic
   per profile, so regenerating outside the lock would still be correct —
   the lock only prevents Hashtbl structural races and wasted work. *)
let cache : (string, Tea_isa.Image.t) Hashtbl.t = Hashtbl.create 32

let cache_mutex = Mutex.create ()

let image p =
  Mutex.lock cache_mutex;
  match Hashtbl.find_opt cache p.Proggen.name with
  | Some img ->
      Mutex.unlock cache_mutex;
      img
  | None ->
      Mutex.unlock cache_mutex;
      let img = Proggen.generate p in
      Mutex.lock cache_mutex;
      let img =
        (* another domain may have generated it meanwhile; keep one copy *)
        match Hashtbl.find_opt cache p.Proggen.name with
        | Some prior -> prior
        | None ->
            Hashtbl.replace cache p.Proggen.name img;
            img
      in
      Mutex.unlock cache_mutex;
      img

let fp_names =
  [
    "168.wupwise"; "171.swim"; "172.mgrid"; "173.applu"; "177.mesa";
    "178.galgel"; "179.art"; "183.equake"; "187.facerec"; "188.ammp";
    "189.lucas"; "191.fma3d"; "200.sixtrack"; "301.apsi";
  ]

let is_fp n = List.mem n fp_names
