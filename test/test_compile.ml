(* Differential tests of the closure-threaded compiled engine
   (Tea_core.Compiled behind Tea_opt.Compile): compiled replay must be
   observationally identical — TBB mapping, coverage, enter/exit
   counters, stats and simulated cycles — to the interpreted packed
   engine over flat, repacked and fused images, fed in one batch or
   split at an arbitrary seam; TBB-identical to the reference engine;
   sharded replay through compiled workers must merge to the sequential
   profile at jobs 1/2/4; demuxed multi-asid replay through compiled
   engines must match the packed demux; and the dispatch-tier
   attribution of a compiled replay must stay a total partition of the
   blocks replayed. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Compiled = Tea_core.Compiled
module Replayer = Tea_core.Replayer
module Transition = Tea_core.Transition
module Tierstat = Tea_core.Tierstat
module Multi = Tea_core.Multi_replayer
module Repack = Tea_opt.Repack
module Fuse = Tea_opt.Fuse
module Compile = Tea_opt.Compile
module Scenario = Tea_workloads.Scenario
module Pool = Tea_parallel.Pool
module Profile = Tea_parallel.Profile
module Shard = Tea_parallel.Shard

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* ---------------- Random workload generation ----------------

   Same pool as test_fuse's generator: traces skew toward long
   single-successor runs so fused chains form, and a fraction of states
   get two successors so the straight-line region's bimodal arm is
   exercised; streams mix loop-shaped repetition with random addresses
   so region runs, span misses, hash hits and NTE cuts all happen. *)

let pool_size = 16

let pool i = 0x1000 + (0x10 * (i mod (pool_size + 4)))

let gen_trace id rand =
  let open QCheck.Gen in
  let n = int_range 1 8 rand in
  let idxs = Array.init n (fun _ -> int_range 0 (pool_size - 1) rand) in
  let blocks = Array.map (fun i -> block_at (pool i)) idxs in
  let succs =
    Array.init n (fun _ ->
        let k = if int_range 0 2 rand < 2 then 1 else int_range 0 3 rand in
        let chosen = List.init k (fun _ -> int_range 0 (n - 1) rand) in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun j ->
            let label = pool idxs.(j) in
            if Hashtbl.mem seen label then false
            else begin
              Hashtbl.add seen label ();
              true
            end)
          chosen)
  in
  Trace.make ~id ~kind:"gen" blocks succs

type workload = {
  w_traces : Trace.t list;
  w_stream : (int * int) list; (* (address, insns) *)
}

let gen_workload =
  let open QCheck.Gen in
  let gen rand =
    let n_traces = int_range 1 5 rand in
    let w_traces = List.init n_traces (fun id -> gen_trace id rand) in
    let n_steps = int_range 0 120 rand in
    let raw =
      List.concat
        (List.init n_steps (fun _ ->
             if int_range 0 4 rand = 0 then
               let a = pool (int_range 0 (pool_size + 3) rand) in
               let b = pool (int_range 0 (pool_size + 3) rand) in
               let k = int_range 2 6 rand in
               List.concat (List.init k (fun _ -> [ a; b ]))
             else [ pool (int_range 0 (pool_size + 3) rand) ]))
    in
    let w_stream = List.map (fun a -> (a, int_range 0 4 rand)) raw in
    { w_traces; w_stream }
  in
  QCheck.make
    ~print:(fun w ->
      Printf.sprintf "traces=%d stream=%d" (List.length w.w_traces)
        (List.length w.w_stream))
    gen

let arrays_of_stream stream =
  ( Array.of_list (List.map fst stream),
    Array.of_list (List.map snd stream),
    List.length stream )

(* The three image variants every property sweeps: flat, profile-guided
   repacked, and repacked+fused (fusion over the stream's own profile
   would gate most chains out on these tiny workloads, so fuse
   unconditionally — the identity must hold either way). *)
let variants w addrs ~len =
  let auto = Builder.build w.w_traces in
  let flat = Packed.freeze auto in
  let tuned = Repack.repack flat (Repack.collect flat addrs ~len) in
  (auto, [ flat; tuned; Fuse.fuse tuned ])

let packed_snapshot ?cut img ~insns addrs ~len =
  let rep = Replayer.create_packed (Packed.dup img) in
  (match cut with
  | Some c when c > 0 && c < len ->
      Replayer.feed_run rep ~insns addrs ~len:c;
      Replayer.feed_run rep ~off:c ~insns addrs ~len:(len - c)
  | _ -> Replayer.feed_run rep ~insns addrs ~len);
  rep

let compiled_replayer ?cut img ~insns addrs ~len =
  let rep = Replayer.create_compiled (Compile.compile (Packed.dup img)) in
  (match cut with
  | Some c when c > 0 && c < len ->
      Replayer.feed_run rep ~insns addrs ~len:c;
      Replayer.feed_run rep ~off:c ~insns addrs ~len:(len - c)
  | _ -> Replayer.feed_run rep ~insns addrs ~len);
  rep

(* The tentpole property: compiling any image changes no replay
   observable — full snapshot equality (counts, coverage, enters/exits,
   stats, simulated cycles) plus the halt state, whether the stream is
   fed in one batch or split at an arbitrary seam (compiled dispatch is
   bounded by the threaded batch end, so a seam never moves a cycle). *)
let prop_compiled_is_identity =
  QCheck.Test.make ~name:"compiled replay == packed replay" ~count:150
    (QCheck.pair gen_workload (QCheck.int_range 0 200))
    (fun (w, cut) ->
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let _, imgs = variants w addrs ~len in
      List.for_all
        (fun img ->
          let base = packed_snapshot img ~insns addrs ~len in
          let once = compiled_replayer img ~insns addrs ~len in
          let split =
            compiled_replayer ~cut:(min cut len) img ~insns addrs ~len
          in
          Replayer.snapshot base = Replayer.snapshot once
          && Replayer.snapshot base = Replayer.snapshot split
          && Replayer.state base = Replayer.state once
          && Replayer.state base = Replayer.state split)
        imgs)

(* Against the paper-faithful engine: the TBB mapping (the answer to
   "which TBB is executing") and the boundary counters must agree with a
   reference replay of the same stream. *)
let prop_compiled_equals_reference =
  QCheck.Test.make ~name:"compiled TBB mapping == reference" ~count:100
    gen_workload (fun w ->
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let auto, imgs = variants w addrs ~len in
      let reference =
        Replayer.create (Transition.create Transition.config_global_local auto)
      in
      Replayer.feed_run reference ~insns addrs ~len;
      List.for_all
        (fun img ->
          let comp = compiled_replayer img ~insns addrs ~len in
          Replayer.tbb_counts reference = Replayer.tbb_counts comp
          && Replayer.covered_insns reference = Replayer.covered_insns comp
          && Replayer.trace_enters reference = Replayer.trace_enters comp
          && Replayer.trace_exits reference = Replayer.trace_exits comp)
        imgs)

(* feed_addr single-stepping through the compiled engine must equal the
   batched path — the batch bound is the only loop-carried variable. *)
let prop_compiled_feed_addr =
  QCheck.Test.make ~name:"compiled feed_run == repeated feed_addr" ~count:100
    gen_workload (fun w ->
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let _, imgs = variants w addrs ~len in
      List.for_all
        (fun img ->
          let one =
            Replayer.create_compiled (Compile.compile (Packed.dup img))
          in
          List.iter
            (fun (addr, ins) -> Replayer.feed_addr one ~insns:ins addr)
            w.w_stream;
          let batched = compiled_replayer img ~insns addrs ~len in
          Replayer.snapshot one = Replayer.snapshot batched
          && Replayer.state one = Replayer.state batched)
        imgs)

(* ---------------- sharded replay through compiled workers ------------ *)

let compiled_make img = Replayer.create_compiled (Compile.compile (Packed.dup img))

let prop_sharded_compiled_replay =
  QCheck.Test.make ~name:"compiled shards: jobs 1/2/4 == sequential" ~count:15
    gen_workload (fun w ->
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let _, imgs = variants w addrs ~len in
      List.for_all
        (fun img ->
          let pseq =
            Profile.of_replayer (packed_snapshot img ~insns addrs ~len)
          in
          List.for_all
            (fun jobs ->
              let pn =
                Pool.with_pool ~jobs (fun pool ->
                    Shard.replay_arrays pool img ~make:compiled_make ~insns
                      addrs ~len)
              in
              Profile.equal pseq pn)
            [ 1; 2; 4 ])
        imgs)

(* ---------------- multi-asid demux through compiled engines ---------- *)

let with_tmp f =
  let path = Filename.temp_file "tea_test_compile" ".trc" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* Two asids with independent automata, interleaved with invalidations
   (SMC) in one PCTR3 stream: demuxed replay through per-asid compiled
   engines must produce exactly the per-asid packed snapshots, and
   demux-first sharding with compiled workers must merge to them. *)
let prop_multi_asid_compiled =
  QCheck.Test.make ~name:"multi-asid demux: compiled == packed" ~count:25
    (QCheck.pair gen_workload gen_workload)
    (fun (w0, w1) ->
      QCheck.assume
        (w0.w_stream <> [] && w1.w_stream <> []);
      let img_of w =
        let addrs, _, len = arrays_of_stream w.w_stream in
        let flat = Packed.freeze (Builder.build w.w_traces) in
        Repack.repack flat (Repack.collect flat addrs ~len)
      in
      let imgs = [| img_of w0; img_of w1 |] in
      let stream_of asid w =
        let starts, insns, len = arrays_of_stream w.w_stream in
        Scenario.stream ~asid ~name:"gen" ~starts ~insns ~len
      in
      let scn emit =
        Scenario.interleave ~quantum:3 [ stream_of 0 w0; stream_of 1 w1 ] emit;
        (* then a second, self-modifying pass of asid 0's stream *)
        emit (Tea_core.Pc_trace.Switch { asid = 0 });
        Scenario.smc ~period:17 (stream_of 0 w0) emit
      in
      with_tmp (fun path ->
          let _ = Scenario.write_file path scn in
          let packed_for asid = imgs.(asid) in
          let seq make =
            Multi.snapshots
              (Multi.replay_events
                 (fun asid -> make (packed_for asid))
                 path)
          in
          let want = seq (fun img -> Replayer.create_packed (Packed.dup img)) in
          let got = seq compiled_make in
          let sharded =
            Pool.with_pool ~jobs:2 (fun pool ->
                Shard.replay_events pool packed_for ~make:compiled_make path)
          in
          want = got
          && List.for_all2
               (fun (a1, s1) (a2, p2) -> a1 = a2 && Profile.equal s1 p2)
               want sharded))

(* ---------------- dispatch-tier partition ---------------- *)

(* With the profiler installed, a compiled replay attributes every block
   to exactly one tier, and only to tiers compiled dispatch can reach:
   compiled, hash, miss. *)
let test_tier_partition () =
  let w =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 42 |]) (QCheck.gen gen_workload)
  in
  let addrs, insns, len = arrays_of_stream w.w_stream in
  let _, imgs = variants w addrs ~len in
  List.iter
    (fun img ->
      Tierstat.install ();
      let snap =
        Fun.protect
          ~finally:(fun () ->
            if Tierstat.enabled () then ignore (Tierstat.uninstall ()))
          (fun () ->
            ignore (compiled_replayer img ~insns addrs ~len);
            Tierstat.uninstall ())
      in
      check Alcotest.int "tiers partition the batch" len (Tierstat.total snap);
      Array.iteri
        (fun tier n ->
          if
            tier <> Tierstat.t_compiled && tier <> Tierstat.t_hash
            && tier <> Tierstat.t_miss
          then
            check Alcotest.int
              (Printf.sprintf "tier %s unused" (Tierstat.tier_name tier))
              0 n)
        snap.Tierstat.ts_totals)
    imgs

(* ---------------- image statistics on a real capture ---------------- *)

let listscan_fixture () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Packed.freeze (Builder.build traces) in
  let path = Filename.temp_file "tea_compile" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  (flat, starts, insns, len)

let test_image_stats () =
  let flat, starts, insns, len = listscan_fixture () in
  let tuned = Repack.repack flat (Repack.collect flat starts ~len) in
  let c = Compile.compile (Packed.dup tuned) in
  check Alcotest.bool "one closure per state at least" true
    (Compiled.n_closures c >= Packed.n_slots (Compiled.base c));
  (* listscan is bimodal-branchy: its loop states land in the
     straight-line region, not behind chain matchers *)
  check Alcotest.bool "region states found" true (Compiled.region_states c > 0);
  check Alcotest.int "no minihash fallback" 0 (Compiled.fallback_states c);
  let d = Compile.describe c in
  check Alcotest.bool "describe mentions the region" true
    (let needle = "straight-line region states" in
     let rec has i =
       i + String.length needle <= String.length d
       && (String.sub d i (String.length needle) = needle || has (i + 1))
     in
     has 0);
  (* engine tag *)
  let rep = Replayer.create_compiled c in
  check Alcotest.bool "compiled engine reported" true
    (match Replayer.engine rep with
    | Replayer.Compiled _ -> true
    | _ -> false);
  (* compiled_replay: end-to-end identity on the capture *)
  let _, baseline, tuned_rep = Compile.compiled_replay flat ~insns starts ~len in
  check Alcotest.bool "capture replay identical" true
    (Replayer.snapshot baseline = Replayer.snapshot tuned_rep)

let () =
  Alcotest.run "tea_compile"
    [
      ( "differential",
        [
          qtest prop_compiled_is_identity;
          qtest prop_compiled_equals_reference;
          qtest prop_compiled_feed_addr;
          qtest prop_sharded_compiled_replay;
          qtest prop_multi_asid_compiled;
        ] );
      ( "attribution",
        [ Alcotest.test_case "tier partition" `Quick test_tier_partition ] );
      ( "image",
        [ Alcotest.test_case "stats and describe" `Quick test_image_stats ] );
    ]
