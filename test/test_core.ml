open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Transition = Tea_core.Transition
module Online = Tea_core.Online
module Replayer = Tea_core.Replayer
module Serialize = Tea_core.Serialize
module Dot = Tea_core.Dot

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* T1: 0x100 -> 0x200 -> 0x300 -> back to 0x100; T2: 0x400 -> 0x300' *)
let t1 =
  Trace.linear ~id:0 ~kind:"test" ~cycle:true
    [ block_at 0x100; block_at 0x200; block_at 0x300 ]

let t2 = Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ]

(* ---------------- Automaton & Algorithm 1 ---------------- *)

let test_empty_automaton () =
  let a = Automaton.create () in
  check Alcotest.int "no states" 0 (Automaton.n_states a);
  check Alcotest.int "no transitions" 0 (Automaton.n_transitions a);
  check Alcotest.bool "nte not live" false (Automaton.is_live a Automaton.nte);
  check Alcotest.bool "deterministic" true (Automaton.check_deterministic a = Ok ())

let test_algorithm1_property1 () =
  (* Property 1: a state for every TBB. *)
  let a = Builder.build [ t1; t2 ] in
  check Alcotest.int "states = total TBBs" (Trace.n_tbbs t1 + Trace.n_tbbs t2)
    (Automaton.n_states a);
  (* each TBB has its own state even when the block is duplicated (0x300) *)
  let starts = ref [] in
  Automaton.iter_live (fun _ info -> starts := info.Automaton.block_start :: !starts) a;
  check Alcotest.int "0x300 twice" 2
    (List.length (List.filter (fun s -> s = 0x300) !starts))

let test_algorithm1_property2 () =
  (* Property 2: transitions for every in-trace successor + NTE entries. *)
  let a = Builder.build [ t1; t2 ] in
  (* t1 has 3 edges (cycle), t2 has 1 edge, plus 2 NTE->head transitions *)
  check Alcotest.int "transitions" (3 + 1 + 2) (Automaton.n_transitions a);
  let h1 = Option.get (Automaton.head_of a 0x100) in
  let s2 = Option.get (Automaton.next_in_trace a h1 0x200) in
  let s3 = Option.get (Automaton.next_in_trace a s2 0x300) in
  check Alcotest.(option int) "cycle back" (Some h1) (Automaton.next_in_trace a s3 0x100);
  check Alcotest.(option int) "no stray edge" None (Automaton.next_in_trace a h1 0x300)

let test_heads () =
  let a = Builder.build [ t1; t2 ] in
  let heads = Automaton.heads a in
  check Alcotest.int "two heads" 2 (List.length heads);
  check Alcotest.(list int) "sorted" [ 0x100; 0x400 ] (List.map fst heads);
  check Alcotest.bool "head_of miss" true (Automaton.head_of a 0x999 = None)

let test_state_info () =
  let a = Builder.build [ t1 ] in
  let h = Option.get (Automaton.head_of a 0x100) in
  (match Automaton.state_info a h with
  | Some info ->
      check Alcotest.int "trace id" 0 info.Automaton.trace_id;
      check Alcotest.int "tbb index" 0 info.Automaton.tbb_index;
      check Alcotest.int "start" 0x100 info.Automaton.block_start;
      check Alcotest.int "n_insns" 1 info.Automaton.n_insns
  | None -> Alcotest.fail "head has info");
  check Alcotest.bool "nte info" true (Automaton.state_info a Automaton.nte = None)

let test_remove_trace () =
  let a = Builder.build [ t1; t2 ] in
  Automaton.remove_trace a 0;
  check Alcotest.int "states" (Trace.n_tbbs t2) (Automaton.n_states a);
  check Alcotest.int "transitions" 2 (Automaton.n_transitions a);
  check Alcotest.bool "head gone" true (Automaton.head_of a 0x100 = None);
  check Alcotest.bool "other head intact" true (Automaton.head_of a 0x400 <> None);
  check Alcotest.bool "still deterministic" true (Automaton.check_deterministic a = Ok ());
  (* removing twice is a no-op *)
  Automaton.remove_trace a 0;
  check Alcotest.int "idempotent" (Trace.n_tbbs t2) (Automaton.n_states a)

let test_replace_trace () =
  let a = Builder.build [ t1 ] in
  let t1' =
    Trace.linear ~id:0 ~kind:"test" ~cycle:true
      [ block_at 0x100; block_at 0x200; block_at 0x300; block_at 0x500 ]
  in
  Automaton.add_trace a t1';
  check Alcotest.int "grown" 4 (Automaton.n_states a);
  check Alcotest.(list int) "trace ids" [ 0 ] (Automaton.trace_ids a);
  (* old states tombstoned, head points at the new version *)
  let h = Option.get (Automaton.head_of a 0x100) in
  check Alcotest.bool "head live" true (Automaton.is_live a h)

let test_byte_size_model () =
  let a = Builder.build [ t1; t2 ] in
  check Alcotest.int "16 + 8*states + 5*transitions"
    (16 + (8 * 5) + (5 * 6))
    (Automaton.byte_size a)

let test_states_of_trace_order () =
  let a = Builder.build [ t1 ] in
  let states = Automaton.states_of_trace a 0 in
  let indices =
    List.map (fun s -> (Option.get (Automaton.state_info a s)).Automaton.tbb_index) states
  in
  check Alcotest.(list int) "tbb order" [ 0; 1; 2 ] indices

(* ---------------- Builder extras ---------------- *)

let test_duplicate_trace () =
  let dup = Builder.duplicate_trace ~factor:2 t1 in
  check Alcotest.int "doubled" 6 (Trace.n_tbbs dup);
  check Alcotest.int "same entry" (Trace.entry t1) (Trace.entry dup);
  check Alcotest.int "same id" t1.Trace.id dup.Trace.id;
  (* chain through both copies, last loops to the cycle target *)
  check Alcotest.(list int) "chain" [ 1 ] (Trace.successors dup 0);
  check Alcotest.(list int) "copy boundary" [ 3 ] (Trace.successors dup 2);
  check Alcotest.(list int) "final back edge" [ 0 ] (Trace.successors dup 5)

let test_duplicate_trace_interior_cycle () =
  (* prologue block then a 2-block loop back to index 1 *)
  let t =
    Trace.make ~id:3 ~kind:"t"
      [| block_at 0x10; block_at 0x20; block_at 0x30 |]
      [| [ 1 ]; [ 2 ]; [ 1 ] |]
  in
  let dup = Builder.duplicate_trace ~factor:3 t in
  (* prologue + 3 copies of the 2-block body *)
  check Alcotest.int "size" (1 + (3 * 2)) (Trace.n_tbbs dup);
  check Alcotest.(list int) "loops to body start" [ 1 ]
    (Trace.successors dup (Trace.n_tbbs dup - 1))

let test_unroll_trace_synthetic_addresses () =
  let unrolled = Builder.unroll_trace ~factor:2 ~clone_base:0x40000000 t1 in
  check Alcotest.int "doubled" 6 (Trace.n_tbbs unrolled);
  (* every block, first copy included, lives at synthetic addresses *)
  Array.iter
    (fun tb ->
      check Alcotest.bool "clone address" true
        (Tea_traces.Tbb.start tb >= 0x40000000))
    unrolled.Trace.tbbs

let test_unrolled_trace_cannot_replay () =
  (* the paper's Figure 1 argument: the unrolled trace's DFA finds no
     corresponding executable code, the duplicated trace's does *)
  let img = Tea_workloads.Micro.copy_loop ~words:50 ~passes:10 () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let cyclic =
    List.find
      (fun t -> Trace.successors t (Trace.n_tbbs t - 1) <> [])
      (Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set)
  in
  let coverage_with trace =
    let auto = Builder.build [ trace ] in
    let trans = Transition.create Transition.config_global_local auto in
    let rep = Replayer.create trans in
    let cb =
      {
        Tea_cfg.Discovery.on_block = (fun b -> Replayer.feed rep b);
        Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
      }
    in
    let _ = Tea_cfg.Discovery.run img cb in
    Replayer.coverage rep
  in
  let unrolled = Builder.unroll_trace ~factor:2 ~clone_base:0x40000000 cyclic in
  let duplicated = Builder.duplicate_trace ~factor:2 cyclic in
  check (Alcotest.float 0.0001) "unrolled: never leaves NTE" 0.0
    (coverage_with unrolled);
  check Alcotest.bool "duplicated replays" true (coverage_with duplicated > 0.5)

let test_duplicate_trace_errors () =
  Alcotest.check_raises "factor 1"
    (Invalid_argument "Builder.duplicate_trace: factor must be >= 2") (fun () ->
      ignore (Builder.duplicate_trace ~factor:1 t1));
  Alcotest.check_raises "not cyclic"
    (Invalid_argument "Builder.duplicate_trace: trace is not a cyclic superblock")
    (fun () -> ignore (Builder.duplicate_trace ~factor:2 t2))

(* ---------------- Transition function ---------------- *)

let test_step_in_trace () =
  let a = Builder.build [ t1 ] in
  let tr = Transition.create Transition.config_global_local a in
  let h = Option.get (Automaton.head_of a 0x100) in
  let s2 = Transition.step tr h 0x200 in
  check Alcotest.bool "in trace" true (Automaton.is_live a s2);
  check Alcotest.int "hot path counted" 1 (Transition.stats tr).Transition.in_trace_hits

let test_step_enter_from_nte () =
  let a = Builder.build [ t1 ] in
  let tr = Transition.create Transition.config_global_local a in
  let s = Transition.step tr Automaton.nte 0x100 in
  check Alcotest.(option int) "entered head" (Some s) (Automaton.head_of a 0x100);
  check Alcotest.int "global hit" 1 (Transition.stats tr).Transition.global_hits

let test_step_miss_to_nte () =
  let a = Builder.build [ t1 ] in
  let tr = Transition.create Transition.config_global_local a in
  let s = Transition.step tr Automaton.nte 0x9999 in
  check Alcotest.int "nte" Automaton.nte s;
  check Alcotest.int "miss counted" 1 (Transition.stats tr).Transition.global_misses

let test_step_trace_to_trace_cached () =
  let a = Builder.build [ t1; t2 ] in
  let tr = Transition.create Transition.config_global_local a in
  let h1 = Option.get (Automaton.head_of a 0x100) in
  (* leaving t1 for t2's head: first a container hit, then a cache hit *)
  let s = Transition.step tr h1 0x400 in
  check Alcotest.(option int) "entered t2" (Some s) (Automaton.head_of a 0x400);
  let _ = Transition.step tr h1 0x400 in
  check Alcotest.int "second time cached" 1 (Transition.stats tr).Transition.cache_hits

let test_no_cache_config () =
  let a = Builder.build [ t1; t2 ] in
  let tr = Transition.create Transition.config_global_no_local a in
  let h1 = Option.get (Automaton.head_of a 0x100) in
  let _ = Transition.step tr h1 0x400 in
  let _ = Transition.step tr h1 0x400 in
  check Alcotest.int "never cached" 0 (Transition.stats tr).Transition.cache_hits;
  check Alcotest.int "two container hits" 2 (Transition.stats tr).Transition.global_hits

let test_cycles_accumulate () =
  let a = Builder.build [ t1 ] in
  let tr = Transition.create Transition.config_global_local a in
  let before = Transition.cycles tr in
  let _ = Transition.step tr Automaton.nte 0x100 in
  check Alcotest.bool "cost charged" true (Transition.cycles tr > before);
  Transition.reset_counters tr;
  check Alcotest.int "reset" 0 (Transition.cycles tr)

let test_refresh_after_growth () =
  let a = Builder.build [ t1 ] in
  let tr = Transition.create Transition.config_global_local a in
  check Alcotest.int "miss before" Automaton.nte (Transition.step tr Automaton.nte 0x400);
  Automaton.add_trace a t2;
  Transition.refresh tr;
  let s = Transition.step tr Automaton.nte 0x400 in
  check Alcotest.(option int) "hit after refresh" (Some s) (Automaton.head_of a 0x400)

(* The three lookup configurations differ only in cost, never in the
   resulting state. *)
let prop_configs_agree =
  let gen = QCheck.(list (int_range 0 8)) in
  QCheck.Test.make ~name:"lookup configs agree on states" ~count:200 gen
    (fun choices ->
      let addrs = [| 0x100; 0x200; 0x300; 0x400; 0x50; 0x42; 0x101; 0x201; 0x301 |] in
      let run config =
        let a = Builder.build [ t1; t2 ] in
        let tr = Transition.create config a in
        let state = ref Automaton.nte in
        List.map
          (fun c ->
            state := Transition.step tr !state addrs.(c);
            (* states are ids; compare via (trace, index) to be robust *)
            match Automaton.state_info a !state with
            | Some i -> (i.Automaton.trace_id, i.Automaton.tbb_index)
            | None -> (-1, -1))
          choices
      in
      let gl = run Transition.config_global_local in
      let gnl = run Transition.config_global_no_local in
      let ngl = run Transition.config_no_global_local in
      gl = gnl && gnl = ngl)

(* ---------------- Replayer ---------------- *)

let test_replayer_profile () =
  let a = Builder.build [ t1 ] in
  let tr = Transition.create Transition.config_global_local a in
  let r = Replayer.create tr in
  (* two loop laps then out *)
  List.iter
    (fun addr -> Replayer.feed_addr r ~insns:1 addr)
    [ 0x100; 0x200; 0x300; 0x100; 0x200; 0x300; 0x999 ];
  check Alcotest.int "covered" 6 (Replayer.covered_insns r);
  check Alcotest.int "total" 7 (Replayer.total_insns r);
  check Alcotest.int "one enter" 1 (Replayer.trace_enters r);
  check Alcotest.int "one exit" 1 (Replayer.trace_exits r);
  let profile = Replayer.trace_profile r 0 in
  check Alcotest.(list (pair int int)) "per-tbb counts"
    [ (0, 2); (1, 2); (2, 2) ] profile

let test_replayer_distinguishes_instances () =
  (* the paper's point: block 0x300 is in both traces; the replayer knows
     which instance ran from the TEA state *)
  let a = Builder.build [ t1; t2 ] in
  let tr = Transition.create Transition.config_global_local a in
  let r = Replayer.create tr in
  List.iter (fun addr -> Replayer.feed_addr r ~insns:1 addr) [ 0x400; 0x300 ];
  check Alcotest.(list (pair int int)) "t2's 0x300 counted" [ (0, 1); (1, 1) ]
    (Replayer.trace_profile r 1);
  check Alcotest.(list (pair int int)) "t1 untouched" [ (0, 0); (1, 0); (2, 0) ]
    (Replayer.trace_profile r 0)

let test_replayer_coverage_bounds () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let result, rep = Tea_pinsim.Pintool_replay.replay ~traces img in
  check Alcotest.bool "coverage in [0,1]" true
    (result.Tea_pinsim.Pintool_replay.coverage >= 0.0
    && result.Tea_pinsim.Pintool_replay.coverage <= 1.0);
  check Alcotest.bool "enters >= exits - 1" true
    (abs (Replayer.trace_enters rep - Replayer.trace_exits rep) <= 1)

(* ---------------- Online recorder (Algorithm 2) ---------------- *)

let online_run image =
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let online = Online.create strategy in
  let cb =
    {
      Tea_cfg.Discovery.on_block = (fun b -> Online.feed online b);
      Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let _ = Tea_cfg.Discovery.run ~policy:Tea_cfg.Discovery.Stardbt image cb in
  Online.finish online;
  online

let test_online_records_traces () =
  let online = online_run (Tea_workloads.Micro.nested_loop ~outer:30 ~inner:60 ()) in
  check Alcotest.bool "has traces" true (List.length (Online.traces online) > 0);
  check Alcotest.bool "coverage positive" true (Online.coverage online > 0.5);
  check Alcotest.bool "phase back to executing" true (Online.phase online = Online.Executing)

let test_online_matches_dbt_strategy () =
  (* Algorithm 2 drives the same MRET strategy the DBT driver does; the
     recorded trace entries must match on the same block stream. *)
  let img = Tea_workloads.Micro.list_scan ~nodes:1500 ~match_every:3 () in
  let online = online_run img in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let entries l = List.sort compare (List.map Trace.entry l) in
  check Alcotest.(list int) "same trace entries"
    (entries (Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set))
    (entries (Online.traces online))

let test_online_automaton_consistency () =
  let online = online_run (Tea_workloads.Micro.branchy_loop ()) in
  let auto = Online.automaton online in
  check Alcotest.bool "deterministic" true (Automaton.check_deterministic auto = Ok ());
  (* every recorded trace is represented *)
  let ids = Automaton.trace_ids auto in
  check Alcotest.int "all traces in automaton" (List.length (Online.traces online))
    (List.length ids)

let test_online_vs_offline_equivalence () =
  (* building a fresh TEA from the recorded traces yields the same
     structure the online recorder built incrementally *)
  let online = online_run (Tea_workloads.Micro.branchy_loop ()) in
  let offline = Builder.build (Online.traces online) in
  let auto = Online.automaton online in
  check Alcotest.int "states" (Automaton.n_states offline) (Automaton.n_states auto);
  check Alcotest.int "transitions" (Automaton.n_transitions offline)
    (Automaton.n_transitions auto);
  check Alcotest.int "byte size" (Automaton.byte_size offline) (Automaton.byte_size auto)

(* Regression: blocks recorded during Creating must account as cold even
   when recording triggers while the TEA sits inside an installed trace
   (the paper's Algorithm 2 keeps the automaton at NTE while recording).
   A scripted strategy forces exactly that: its second recording starts
   right after an in-trace step, where the stale non-NTE state used to
   keep crediting [covered]. *)
let test_online_creating_counts_cold () =
  let module Scripted = struct
    type t = {
      mutable trig_calls : int;
      mutable recording : Block.t list; (* in order *)
      mutable completed : Trace.t list;
    }

    let name = "scripted"

    let create _ = { trig_calls = 0; recording = []; completed = [] }

    (* fire on the 3rd and 6th Executing feed: once from NTE, once while
       the TEA is mid-trace *)
    let trigger t ~current:_ ~next:_ =
      t.trig_calls <- t.trig_calls + 1;
      t.trig_calls = 3 || t.trig_calls = 6

    let start t ~current:_ ~next = t.recording <- [ next ]

    let add t ~current:_ ~next =
      if List.length t.recording >= 2 then begin
        let id = List.length t.completed in
        let tr =
          (* first trace loops A->B->A; second is the linear B->A, so the
             two heads stay distinct and the automaton deterministic *)
          if id = 0 then
            Trace.linear ~id ~kind:"scripted" ~cycle:true t.recording
          else Trace.linear ~id ~kind:"scripted" t.recording
        in
        t.recording <- [];
        t.completed <- t.completed @ [ tr ];
        `Done (Some tr)
      end
      else begin
        t.recording <- t.recording @ [ next ];
        `Continue
      end

    let abort _ = None

    let traces t = t.completed
  end in
  let online = Online.create (module Scripted) in
  let a = block_at 0x100 and b = block_at 0x200 in
  (* A B | A B A (records T1=[A;B], replays it) | B A B (coverage while
     executing T1) then trigger #6 lands at B mid-trace: records T2=[B;A],
     whose two blocks must execute cold *)
  List.iter
    (fun blk -> Online.feed online blk)
    [ a; b; a; b; a; b; a; b; a; b ];
  check Alcotest.int "two traces recorded" 2
    (List.length (Online.traces online));
  check Alcotest.bool "back to executing" true
    (Online.phase online = Online.Executing);
  check Alcotest.int "total insns" 10 (Online.total_insns online);
  (* steps 5,6,7,8 execute inside T1; steps 9,10 are T2 being recorded
     (cold); step 10's `Done re-steps from NTE into T2's fresh head *)
  check Alcotest.int "recorded blocks count as cold" 5
    (Online.covered_insns online)

(* ---------------- Serialization & DOT ---------------- *)

let test_text_roundtrip () =
  let a = Builder.build [ t1; t2 ] in
  let img = Tea_workloads.Micro.list_scan () in
  (* use traces over the real image so blocks can be re-decoded *)
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let real = Builder.of_set dbt.Tea_dbt.Stardbt.set in
  let loaded = Serialize.of_string img (Serialize.to_string real) in
  check Alcotest.int "states" (Automaton.n_states real) (Automaton.n_states loaded);
  check Alcotest.int "transitions" (Automaton.n_transitions real)
    (Automaton.n_transitions loaded);
  check Alcotest.int "byte size" (Automaton.byte_size real) (Automaton.byte_size loaded);
  check Alcotest.(list int) "heads agree"
    (List.map fst (Automaton.heads real))
    (List.map fst (Automaton.heads loaded));
  ignore a

let test_binary_size_grounds_model () =
  let img = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let a = Builder.of_set dbt.Tea_dbt.Stardbt.set in
  check Alcotest.int "byte_size = |to_binary|" (Automaton.byte_size a)
    (Serialize.binary_size a)

let test_binary_header () =
  let a = Builder.build [ t1 ] in
  let bin = Serialize.to_binary a in
  check Alcotest.string "magic" "TEA1" (String.sub bin 0 4);
  check Alcotest.int "length" (Automaton.byte_size a) (String.length bin)

let test_bad_text () =
  let img = Tea_workloads.Micro.list_scan () in
  try
    ignore (Serialize.of_string img "garbage");
    Alcotest.fail "should raise"
  with Serialize.Parse_error _ -> ()

let test_dot_output () =
  let a = Builder.build [ t1; t2 ] in
  let dot = Dot.of_automaton ~title:"test" a in
  check Alcotest.bool "has NTE" true (contains dot "NTE");
  check Alcotest.bool "has cluster" true (contains dot "cluster_t0");
  check Alcotest.bool "has labels" true (contains dot "0x100");
  check Alcotest.bool "digraph" true (contains dot "digraph")

(* ---------------- Phases ---------------- *)

module Phases = Tea_core.Phases

let test_phases_two_phase_workload () =
  let img = Tea_workloads.Micro.two_phase ~phase_iters:3000 ~gap_blocks:400 () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let auto = Builder.of_set dbt.Tea_dbt.Stardbt.set in
  let trans = Transition.create Transition.config_global_local auto in
  let rep = Replayer.create trans in
  let det =
    Phases.create
      ~config:{ Phases.window = 256; max_stable_exit_ratio = 0.05; min_stable_coverage = 0.7 }
      ()
  in
  let cb =
    {
      Tea_cfg.Discovery.on_block =
        (fun b ->
          Replayer.feed rep b;
          Phases.feed det (Replayer.state rep));
      Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let _ = Tea_cfg.Discovery.run img cb in
  Phases.finish det;
  check Alcotest.bool "two phases" true (Phases.n_phases det >= 2);
  let segs = Phases.segments det in
  (* adjacent segments alternate stability *)
  let rec alternates = function
    | a :: (b :: _ as rest) -> a.Phases.stable <> b.Phases.stable && alternates rest
    | _ -> true
  in
  check Alcotest.bool "alternating" true (alternates segs);
  (* segment boundaries tile the step range *)
  let rec contiguous = function
    | a :: (b :: _ as rest) ->
        a.Phases.last_step + 1 = b.Phases.first_step && contiguous rest
    | _ -> true
  in
  check Alcotest.bool "contiguous" true (contiguous segs);
  check Alcotest.int "steps accounted" (Phases.total_steps det)
    (List.fold_left (fun acc s -> acc + s.Phases.last_step - s.Phases.first_step + 1) 0 segs)

let test_phases_empty () =
  let det = Phases.create () in
  Phases.finish det;
  check Alcotest.int "no segments" 0 (List.length (Phases.segments det));
  check Alcotest.int "no phases" 0 (Phases.n_phases det)

let test_phases_window_validation () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "Phases.create: window must be positive") (fun () ->
      ignore
        (Phases.create
           ~config:{ Phases.window = 0; max_stable_exit_ratio = 0.1; min_stable_coverage = 0.5 }
           ()))

let test_phases_all_cold () =
  let det =
    Phases.create
      ~config:{ Phases.window = 4; max_stable_exit_ratio = 0.1; min_stable_coverage = 0.5 }
      ()
  in
  for _ = 1 to 16 do
    Phases.feed det Automaton.nte
  done;
  Phases.finish det;
  check Alcotest.int "one unstable segment" 1 (List.length (Phases.segments det));
  check Alcotest.int "no phases" 0 (Phases.n_phases det);
  check Alcotest.int "nothing stable" 0 (Phases.stable_steps det)

(* ---------------- Analysis ---------------- *)

module Analysis = Tea_core.Analysis

let analysis_replayer () =
  let img = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let auto = Builder.of_set dbt.Tea_dbt.Stardbt.set in
  let trans = Transition.create Transition.config_global_local auto in
  let rep = Replayer.create trans in
  let cb =
    {
      Tea_cfg.Discovery.on_block = (fun b -> Replayer.feed rep b);
      Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let _ = Tea_cfg.Discovery.run img cb in
  rep

let test_analysis_per_trace () =
  let rep = analysis_replayer () in
  let stats = Analysis.per_trace rep in
  check Alcotest.bool "nonempty" true (List.length stats > 0);
  (* sorted by instructions, every ratio within (0, 1] *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Analysis.insns_executed >= b.Analysis.insns_executed && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (sorted stats);
  List.iter
    (fun s ->
      check Alcotest.bool "entries > 0" true (s.Analysis.entries > 0);
      check Alcotest.bool "completion in (0,1.5]" true
        (s.Analysis.completion_ratio > 0.0 && s.Analysis.completion_ratio <= 1.5))
    stats;
  (* totals agree with the replayer's raw counters *)
  let execs = List.fold_left (fun a s -> a + s.Analysis.tbb_executions) 0 stats in
  let raw = List.fold_left (fun a (_, n) -> a + n) 0 (Replayer.tbb_counts rep) in
  check Alcotest.int "exec totals agree" raw execs

let test_analysis_hottest () =
  let rep = analysis_replayer () in
  let top = Analysis.hottest ~n:1 rep in
  check Alcotest.int "one" 1 (List.length top);
  let all = Analysis.per_trace rep in
  check Alcotest.int "is the max" (List.hd all).Analysis.insns_executed
    (List.hd top).Analysis.insns_executed

let test_analysis_summary () =
  let rep = analysis_replayer () in
  let s = Analysis.coverage_summary rep in
  check Alcotest.bool "mentions coverage" true (contains s "coverage")

(* ---------------- Pc_trace ---------------- *)

module Pc_trace = Tea_core.Pc_trace

let test_pc_trace_roundtrip () =
  let path = Filename.temp_file "tea_pc" ".trc" in
  let w = Pc_trace.open_writer path in
  let records = [ (0x8048000, 3); (0x8048010, 5); (0x8048000, 3); (0x9000000, 1) ] in
  List.iter (fun (start, insns) -> Pc_trace.write w ~start ~insns) records;
  Pc_trace.close_writer w;
  let back = List.rev (Pc_trace.fold path [] (fun acc ~start ~insns -> (start, insns) :: acc)) in
  Sys.remove path;
  check Alcotest.(list (pair int int)) "roundtrip" records back

let test_pc_trace_compactness () =
  (* loop-heavy streams compress to a few bytes per block *)
  let path = Filename.temp_file "tea_pc" ".trc" in
  let w = Pc_trace.open_writer path in
  for _ = 1 to 10_000 do
    Pc_trace.write w ~start:0x8048100 ~insns:6;
    Pc_trace.write w ~start:0x8048120 ~insns:4
  done;
  Pc_trace.close_writer w;
  let size = (Unix.stat path).Unix.st_size in
  check Alcotest.int "records" 20_000 (Pc_trace.length path);
  Sys.remove path;
  check Alcotest.bool "a few bytes per record" true (size < 20_000 * 4)

let test_pc_trace_corrupt () =
  let path = Filename.temp_file "tea_pc" ".trc" in
  let oc = open_out_bin path in
  output_string oc "NOTTEA!";
  close_out oc;
  (try
     ignore (Pc_trace.length path);
     Alcotest.fail "bad magic accepted"
   with Pc_trace.Corrupt _ -> ());
  (* truncated mid-record *)
  let oc = open_out_bin path in
  output_string oc "TEAPC1\n";
  output_byte oc 0x80;  (* continuation with no next byte *)
  close_out oc;
  (try
     ignore (Pc_trace.length path);
     Alcotest.fail "truncation accepted"
   with Pc_trace.Corrupt _ -> ());
  Sys.remove path

let test_pc_trace_negative_deltas () =
  (* descending addresses force negative deltas through the zig-zag
     encoder; interleave big jumps both ways *)
  let path = Filename.temp_file "tea_pc" ".trc" in
  let records =
    [ (0x9000000, 2); (0x8048000, 5); (0x10, 1); (0x8048000, 5); (0x0, 0) ]
  in
  let w = Pc_trace.open_writer path in
  List.iter (fun (start, insns) -> Pc_trace.write w ~start ~insns) records;
  Pc_trace.close_writer w;
  let back =
    List.rev (Pc_trace.fold path [] (fun acc ~start ~insns -> (start, insns) :: acc))
  in
  Sys.remove path;
  check Alcotest.(list (pair int int)) "negative deltas roundtrip" records back

let test_pc_trace_max_address () =
  (* near the top of the representable range: deltas of ~2^60 stress the
     varint length limit without tripping the 56-bit-shift guard *)
  let path = Filename.temp_file "tea_pc" ".trc" in
  let hi = 1 lsl 60 in
  let records = [ (hi, 7); (0x100, 3); (hi - 1, 1) ] in
  let w = Pc_trace.open_writer path in
  List.iter (fun (start, insns) -> Pc_trace.write w ~start ~insns) records;
  Pc_trace.close_writer w;
  let back =
    List.rev (Pc_trace.fold path [] (fun acc ~start ~insns -> (start, insns) :: acc))
  in
  Sys.remove path;
  check Alcotest.(list (pair int int)) "max-address roundtrip" records back

let test_pc_trace_empty_stream () =
  (* magic only, zero records: valid, not corrupt *)
  let path = Filename.temp_file "tea_pc" ".trc" in
  let w = Pc_trace.open_writer path in
  Pc_trace.close_writer w;
  check Alcotest.int "no records" 0 (Pc_trace.length path);
  let chunks = ref 0 in
  Pc_trace.iter_chunks path (fun ~starts:_ ~insns:_ ~len:_ -> incr chunks);
  check Alcotest.int "no chunks flushed" 0 !chunks;
  Sys.remove path

let test_pc_trace_truncated_file () =
  let with_bytes bytes k =
    let path = Filename.temp_file "tea_pc" ".trc" in
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> k path)
  in
  (* shorter than the magic itself (the empty file included) *)
  List.iter
    (fun prefix ->
      with_bytes prefix (fun path ->
          try
            ignore (Pc_trace.length path);
            Alcotest.failf "accepted %d-byte header" (String.length prefix)
          with Pc_trace.Corrupt _ -> ()))
    [ ""; "TEA"; "TEAPC1" ];
  (* delta present but insns missing: truncated between the two varints *)
  with_bytes "TEAPC1\n\x04" (fun path ->
      try
        ignore (Pc_trace.length path);
        Alcotest.fail "accepted record missing insns"
      with Pc_trace.Corrupt _ -> ());
  (* varint longer than 64 bits *)
  with_bytes ("TEAPC1\n" ^ String.make 11 '\x80' ^ "\x01") (fun path ->
      try
        ignore (Pc_trace.length path);
        Alcotest.fail "accepted oversized varint"
      with Pc_trace.Corrupt _ -> ())

(* ---------------- PCTR2 dictionary format ---------------- *)

let write_records ?format path records =
  let w = Pc_trace.open_writer ?format path in
  List.iter (fun (start, insns) -> Pc_trace.write w ~start ~insns) records;
  Pc_trace.close_writer w

let read_records path =
  List.rev
    (Pc_trace.fold path [] (fun acc ~start ~insns -> (start, insns) :: acc))

let test_pctr2_both_formats_roundtrip () =
  (* the same mixed stream — loops, back-jumps, fresh pairs — through
     each format and back; v2 is the default *)
  let records =
    List.concat (List.init 50 (fun _ -> [ (0x8048100, 6); (0x8048120, 4) ]))
    @ [ (0x9000000, 2); (0x10, 1); (0x9000000, 2); (0x8048100, 6) ]
  in
  let path = Filename.temp_file "tea_pc" ".trc" in
  write_records path records;
  let via_default = read_records path in
  let default_bytes =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic 6)
  in
  write_records ~format:Pc_trace.V1 path records;
  let via_v1 = read_records path in
  write_records ~format:Pc_trace.V2 path records;
  let via_v2 = read_records path in
  Sys.remove path;
  check Alcotest.string "default writes PCTR2" "PCTR2\n" default_bytes;
  check Alcotest.(list (pair int int)) "default roundtrip" records via_default;
  check Alcotest.(list (pair int int)) "v1 roundtrip" records via_v1;
  check Alcotest.(list (pair int int)) "v2 roundtrip" records via_v2

let test_pctr2_size_win () =
  (* a loopy stream: v2's dictionary tokens must beat v1's per-record
     delta+count pairs by a wide margin (the satellite's 3-4x claim) *)
  let records =
    List.concat
      (List.init 10_000 (fun _ -> [ (0x8048100, 200); (0x8058204, 150) ]))
  in
  let path1 = Filename.temp_file "tea_pc" ".trc" in
  let path2 = Filename.temp_file "tea_pc" ".trc" in
  write_records ~format:Pc_trace.V1 path1 records;
  write_records ~format:Pc_trace.V2 path2 records;
  let s1 = (Unix.stat path1).Unix.st_size in
  let s2 = (Unix.stat path2).Unix.st_size in
  check Alcotest.int "same records" (Pc_trace.length path1)
    (Pc_trace.length path2);
  Sys.remove path1;
  Sys.remove path2;
  check Alcotest.bool
    (Printf.sprintf "v2 at least 3x smaller (%d vs %d bytes)" s2 s1)
    true (s2 * 3 <= s1)

let test_pctr2_corruption () =
  let with_bytes bytes k =
    let path = Filename.temp_file "tea_pc" ".trc" in
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> k path)
  in
  let expect_corrupt name bytes =
    with_bytes bytes (fun path ->
        try
          ignore (Pc_trace.length path);
          Alcotest.failf "accepted %s" name
        with Pc_trace.Corrupt _ -> ())
  in
  (* token references a dictionary entry the stream never defined *)
  expect_corrupt "undefined dictionary token" "PCTR2\n\x05";
  (* literal escape truncated before its delta / between delta and insns *)
  expect_corrupt "literal missing delta" "PCTR2\n\x00";
  expect_corrupt "literal missing insns" "PCTR2\n\x00\x04";
  (* dangling continuation bit in a token *)
  expect_corrupt "truncated token varint" "PCTR2\n\x80";
  (* a valid literal record followed by a truncated one still fails *)
  expect_corrupt "valid then truncated"
    "PCTR2\n\x00\x04\x02\x00\x04";
  (* magic-only is an empty stream, not corrupt *)
  with_bytes "PCTR2\n" (fun path ->
      check Alcotest.int "empty v2 stream" 0 (Pc_trace.length path));
  (* a token backreference resolves to the pair its literal defined *)
  with_bytes "PCTR2\n\x00\x08\x03\x01\x01" (fun path ->
      check Alcotest.(list (pair int int)) "token replays the pair"
        [ (4, 3); (8, 3); (12, 3) ]
        (read_records path))

let test_pc_trace_writer_misuse () =
  let path = Filename.temp_file "tea_pc" ".trc" in
  let w = Pc_trace.open_writer path in
  Alcotest.check_raises "negative insns"
    (Invalid_argument "Pc_trace.write: negative instruction count") (fun () ->
      Pc_trace.write w ~start:0x100 ~insns:(-1));
  Pc_trace.close_writer w;
  Pc_trace.close_writer w; (* double close is fine *)
  Alcotest.check_raises "write after close"
    (Invalid_argument "Pc_trace.write: writer closed") (fun () ->
      Pc_trace.write w ~start:0x100 ~insns:1);
  Sys.remove path

let test_pc_trace_iter_chunks () =
  let path = Filename.temp_file "tea_pc" ".trc" in
  let w = Pc_trace.open_writer path in
  let n = 10 in
  for i = 1 to n do
    Pc_trace.write w ~start:(0x1000 * i) ~insns:i
  done;
  Pc_trace.close_writer w;
  (* a chunk size that does not divide n exercises the final partial flush *)
  let seen = ref [] and lens = ref [] in
  Pc_trace.iter_chunks ~chunk:4 path (fun ~starts ~insns ~len ->
      lens := len :: !lens;
      for i = 0 to len - 1 do
        seen := (starts.(i), insns.(i)) :: !seen
      done);
  Sys.remove path;
  check Alcotest.(list int) "chunk lengths" [ 4; 4; 2 ] (List.rev !lens);
  check Alcotest.(list (pair int int)) "all records in order"
    (List.init n (fun i -> (0x1000 * (i + 1), i + 1)))
    (List.rev !seen);
  Alcotest.check_raises "bad chunk size"
    (Invalid_argument "Pc_trace.iter_chunks: chunk must be positive") (fun () ->
      Pc_trace.iter_chunks ~chunk:0 path (fun ~starts:_ ~insns:_ ~len:_ -> ()))

let test_pc_trace_offline_replay_equivalence () =
  (* capture once, replay offline: identical coverage and profile to the
     live replay *)
  let img = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let path = Filename.temp_file "tea_pc" ".trc" in
  let n = Tea_pinsim.Trace_capture.record img path in
  check Alcotest.bool "captured blocks" true (n > 1000);
  let offline =
    Pc_trace.replay
      (Transition.create Transition.config_global_local (Builder.build traces))
      path
  in
  Sys.remove path;
  let live, _ = Tea_pinsim.Pintool_replay.replay ~traces img in
  check (Alcotest.float 1e-9) "identical coverage"
    live.Tea_pinsim.Pintool_replay.coverage (Replayer.coverage offline);
  check Alcotest.int "identical enters" live.Tea_pinsim.Pintool_replay.trace_enters
    (Replayer.trace_enters offline)

(* ---------------- Transition vs reference model ---------------- *)

(* A naive reference implementation of the whole-program DFA semantics:
   explicit in-trace edges, else trace-head map, else NTE. *)
let reference_step auto state pc =
  match Automaton.next_in_trace auto state pc with
  | Some s -> s
  | None -> (
      match Automaton.head_of auto pc with
      | Some head -> head
      | None -> Automaton.nte)

let prop_transition_matches_reference =
  QCheck.Test.make ~name:"transition function = reference DFA semantics" ~count:300
    QCheck.(pair (int_range 0 2) (list (int_range 0 9)))
    (fun (which, stream) ->
      let config =
        match which with
        | 0 -> Transition.config_global_local
        | 1 -> Transition.config_global_no_local
        | _ -> Transition.config_no_global_local
      in
      let addrs = [| 0x100; 0x200; 0x300; 0x400; 0x50; 0x42; 0x101; 0x201; 0x301; 0x999 |] in
      let auto = Builder.build [ t1; t2 ] in
      let trans = Transition.create config auto in
      let cur = ref Automaton.nte in
      let ref_cur = ref Automaton.nte in
      List.for_all
        (fun c ->
          let pc = addrs.(c) in
          cur := Transition.step trans !cur pc;
          ref_cur := reference_step auto !ref_cur pc;
          !cur = !ref_cur)
        stream)

let () =
  Alcotest.run "tea_core"
    [
      ( "automaton",
        [
          Alcotest.test_case "empty" `Quick test_empty_automaton;
          Alcotest.test_case "property 1" `Quick test_algorithm1_property1;
          Alcotest.test_case "property 2" `Quick test_algorithm1_property2;
          Alcotest.test_case "heads" `Quick test_heads;
          Alcotest.test_case "state info" `Quick test_state_info;
          Alcotest.test_case "remove trace" `Quick test_remove_trace;
          Alcotest.test_case "replace trace" `Quick test_replace_trace;
          Alcotest.test_case "byte size" `Quick test_byte_size_model;
          Alcotest.test_case "state order" `Quick test_states_of_trace_order;
        ] );
      ( "builder",
        [
          Alcotest.test_case "duplicate" `Quick test_duplicate_trace;
          Alcotest.test_case "interior cycle" `Quick test_duplicate_trace_interior_cycle;
          Alcotest.test_case "unroll addresses" `Quick test_unroll_trace_synthetic_addresses;
          Alcotest.test_case "unroll cannot replay" `Quick test_unrolled_trace_cannot_replay;
          Alcotest.test_case "duplicate errors" `Quick test_duplicate_trace_errors;
        ] );
      ( "transition",
        [
          Alcotest.test_case "in-trace" `Quick test_step_in_trace;
          Alcotest.test_case "enter from NTE" `Quick test_step_enter_from_nte;
          Alcotest.test_case "miss to NTE" `Quick test_step_miss_to_nte;
          Alcotest.test_case "cache" `Quick test_step_trace_to_trace_cached;
          Alcotest.test_case "no-cache config" `Quick test_no_cache_config;
          Alcotest.test_case "cycles" `Quick test_cycles_accumulate;
          Alcotest.test_case "refresh" `Quick test_refresh_after_growth;
          qtest prop_configs_agree;
        ] );
      ( "replayer",
        [
          Alcotest.test_case "profile" `Quick test_replayer_profile;
          Alcotest.test_case "instance disambiguation" `Quick
            test_replayer_distinguishes_instances;
          Alcotest.test_case "coverage bounds" `Quick test_replayer_coverage_bounds;
        ] );
      ( "online",
        [
          Alcotest.test_case "records" `Quick test_online_records_traces;
          Alcotest.test_case "matches DBT strategy" `Quick test_online_matches_dbt_strategy;
          Alcotest.test_case "automaton consistent" `Quick test_online_automaton_consistency;
          Alcotest.test_case "online = offline" `Quick test_online_vs_offline_equivalence;
          Alcotest.test_case "recording counts cold" `Quick
            test_online_creating_counts_cold;
        ] );
      ( "phases",
        [
          Alcotest.test_case "two-phase workload" `Quick test_phases_two_phase_workload;
          Alcotest.test_case "empty" `Quick test_phases_empty;
          Alcotest.test_case "window validation" `Quick test_phases_window_validation;
          Alcotest.test_case "all cold" `Quick test_phases_all_cold;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "per trace" `Quick test_analysis_per_trace;
          Alcotest.test_case "hottest" `Quick test_analysis_hottest;
          Alcotest.test_case "summary" `Quick test_analysis_summary;
        ] );
      ( "pc-trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_pc_trace_roundtrip;
          Alcotest.test_case "compactness" `Quick test_pc_trace_compactness;
          Alcotest.test_case "corrupt" `Quick test_pc_trace_corrupt;
          Alcotest.test_case "negative deltas" `Quick test_pc_trace_negative_deltas;
          Alcotest.test_case "max address" `Quick test_pc_trace_max_address;
          Alcotest.test_case "empty stream" `Quick test_pc_trace_empty_stream;
          Alcotest.test_case "truncated file" `Quick test_pc_trace_truncated_file;
          Alcotest.test_case "writer misuse" `Quick test_pc_trace_writer_misuse;
          Alcotest.test_case "iter_chunks" `Quick test_pc_trace_iter_chunks;
          Alcotest.test_case "offline replay" `Quick test_pc_trace_offline_replay_equivalence;
          Alcotest.test_case "v1/v2 roundtrip" `Quick test_pctr2_both_formats_roundtrip;
          Alcotest.test_case "v2 size win" `Quick test_pctr2_size_win;
          Alcotest.test_case "v2 corruption" `Quick test_pctr2_corruption;
          qtest prop_transition_matches_reference;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "binary grounds model" `Quick test_binary_size_grounds_model;
          Alcotest.test_case "binary header" `Quick test_binary_header;
          Alcotest.test_case "bad text" `Quick test_bad_text;
          Alcotest.test_case "dot" `Quick test_dot_output;
        ] );
    ]
