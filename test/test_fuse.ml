(* Tests of the superstate chain-fusion pass (Tea_opt.Fuse) and the fused
   replay loop behind it: fusion must be observationally the identity
   (TBB mapping, coverage, stats, simulated cycles) on any workload, over
   flat and repacked bases, sequentially and sharded; the TEAPK3
   serialization must round-trip and leave unfused images byte-identical;
   Packed.with_fusion must reject corrupt overlays; and the `info`
   description of the listscan image is frozen as a golden. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Serialize = Tea_core.Serialize
module Repack = Tea_opt.Repack
module Fuse = Tea_opt.Fuse
module Metrics = Tea_telemetry.Metrics
module Probe = Tea_telemetry.Probe

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* ---------------- Random workload generation ----------------

   Same pool as test_repack's generator, but traces skew toward long
   single-successor runs (each state gets 1 successor with probability
   ~2/3, else 0..3) so chains and cycles actually form, and streams mix
   loop-shaped repetition with random addresses so both the chain match
   and the mismatch fallback paths are exercised. *)

let pool_size = 16

let pool i = 0x1000 + (0x10 * (i mod (pool_size + 4)))

let gen_trace id rand =
  let open QCheck.Gen in
  let n = int_range 1 8 rand in
  let idxs = Array.init n (fun _ -> int_range 0 (pool_size - 1) rand) in
  let blocks = Array.map (fun i -> block_at (pool i)) idxs in
  let succs =
    Array.init n (fun _ ->
        let k = if int_range 0 2 rand < 2 then 1 else int_range 0 3 rand in
        let chosen = List.init k (fun _ -> int_range 0 (n - 1) rand) in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun j ->
            let label = pool idxs.(j) in
            if Hashtbl.mem seen label then false
            else begin
              Hashtbl.add seen label ();
              true
            end)
          chosen)
  in
  Trace.make ~id ~kind:"gen" blocks succs

type workload = {
  w_traces : Trace.t list;
  w_stream : (int * int) list; (* (address, insns) *)
}

let gen_workload =
  let open QCheck.Gen in
  let gen rand =
    let n_traces = int_range 1 5 rand in
    let w_traces = List.init n_traces (fun id -> gen_trace id rand) in
    let n_steps = int_range 0 120 rand in
    let raw =
      List.concat
        (List.init n_steps (fun _ ->
             (* occasionally emit a short repeated run to seed loop-shaped
                input the cyclic fast-forward can bite on *)
             if int_range 0 4 rand = 0 then
               let a = pool (int_range 0 (pool_size + 3) rand) in
               let b = pool (int_range 0 (pool_size + 3) rand) in
               let k = int_range 2 6 rand in
               List.concat (List.init k (fun _ -> [ a; b ]))
             else [ pool (int_range 0 (pool_size + 3) rand) ]))
    in
    let w_stream = List.map (fun a -> (a, int_range 0 4 rand)) raw in
    { w_traces; w_stream }
  in
  QCheck.make
    ~print:(fun w ->
      Printf.sprintf "traces=%d stream=%d" (List.length w.w_traces)
        (List.length w.w_stream))
    gen

let arrays_of_stream stream =
  ( Array.of_list (List.map fst stream),
    Array.of_list (List.map snd stream),
    List.length stream )

(* Batched replay through feed_run — the entry point that dispatches to
   the fused loop when the image carries an overlay — optionally split
   into two batches at [cut] to exercise the batch-boundary rule (a
   chain match never crosses a batch seam). *)
let batch_snapshot ?cut img ~insns addrs ~len =
  let rep = Replayer.create_packed (Packed.dup img) in
  (match cut with
  | Some c when c > 0 && c < len ->
      Replayer.feed_run rep ~insns addrs ~len:c;
      Replayer.feed_run rep ~off:c ~insns addrs ~len:(len - c)
  | _ -> Replayer.feed_run rep ~insns addrs ~len);
  Replayer.snapshot rep

(* The tentpole property: fusing any image — flat or repacked — changes
   no replay observable, whether the stream is fed in one batch or
   split. (Only the ic_hit/ic_miss split may differ on a repacked base:
   chain steps consult no inline cache; the split is excluded from
   snapshots by construction.) *)
let prop_fusion_is_identity =
  QCheck.Test.make ~name:"fusion is observationally the identity" ~count:150
    (QCheck.pair gen_workload (QCheck.int_range 0 200))
    (fun (w, cut) ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let tuned = Repack.repack flat (Repack.collect flat addrs ~len) in
      List.for_all
        (fun base ->
          let fused = Fuse.fuse base in
          let plain = batch_snapshot base ~insns addrs ~len in
          let once = batch_snapshot fused ~insns addrs ~len in
          let split = batch_snapshot ~cut:(min cut len) fused ~insns addrs ~len in
          plain = once && plain = split)
        [ flat; tuned ])

(* Fused feed_run must also remain exactly len single steps — feed_addr
   goes through Packed.step, which ignores the overlay entirely. *)
let prop_fused_feed_run_equals_feed_addr =
  QCheck.Test.make ~name:"fused feed_run == repeated feed_addr" ~count:100
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let fused = Fuse.fuse flat in
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let one = Replayer.create_packed (Packed.dup fused) in
      List.iter
        (fun (addr, ins) -> Replayer.feed_addr one ~insns:ins addr)
        w.w_stream;
      let batched = Replayer.create_packed (Packed.dup fused) in
      Replayer.feed_run batched ~insns addrs ~len;
      Replayer.snapshot one = Replayer.snapshot batched
      && Replayer.state one = Replayer.state batched)

(* Round-tripping a fused image through TEAPK3 bytes preserves the
   overlay and replay behaviour; unfused images keep writing their
   PR 1 / PR 4 magics, byte for byte. *)
let prop_teapk3_roundtrip =
  QCheck.Test.make ~name:"TEAPK3 round-trip replays identically" ~count:100
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let tuned = Repack.repack flat (Repack.collect flat addrs ~len) in
      List.for_all
        (fun (base, unfused_magic) ->
          let fused = Fuse.fuse base in
          let bin = Serialize.packed_to_binary fused in
          let loaded = Serialize.packed_of_binary bin in
          let magic_ok =
            if Packed.is_fused fused then String.sub bin 0 6 = "TEAPK3"
            else String.sub bin 0 6 = unfused_magic
          in
          magic_ok
          && String.sub (Serialize.packed_to_binary base) 0 6 = unfused_magic
          && Packed.is_fused loaded = Packed.is_fused fused
          && Packed.n_chains loaded = Packed.n_chains fused
          && Packed.n_cyclic_chains loaded = Packed.n_cyclic_chains fused
          && batch_snapshot loaded ~insns addrs ~len
             = batch_snapshot fused ~insns addrs ~len
          && Serialize.packed_to_binary loaded = bin)
        [ (flat, "TEAPK1"); (tuned, "TEAPK2") ])

(* ---------------- sharded replay over a fused image ----------------

   Same bar as PR 4: --jobs N merges to --jobs 1 counter for counter.
   Chain matching is bounded by each chunk's end, so sync-point
   stitching needs no new rule — only the chunk-local ic split (and the
   fused_steps probe, which depends on where seams fall) may differ. *)

let variable_counter = function
  | "packed.ic_hit" | "packed.ic_miss" | "packed.fused_steps" -> true
  | _ -> false

let snapshots_equal_mod_ic s1 s4 =
  List.filter (fun (n, _) -> not (variable_counter n)) s1.Metrics.s_counters
  = List.filter (fun (n, _) -> not (variable_counter n)) s4.Metrics.s_counters
  && s1.Metrics.s_histograms = s4.Metrics.s_histograms

let sharded_snapshot img ~insns addrs ~len jobs =
  Probe.install ();
  Fun.protect
    ~finally:(fun () -> if Probe.enabled () then ignore (Probe.uninstall ()))
    (fun () ->
      let profile =
        Tea_parallel.Pool.with_pool ~jobs (fun pool ->
            Tea_parallel.Shard.replay_arrays pool img ~insns addrs ~len)
      in
      (profile, Probe.uninstall ()))

let prop_sharded_fused_replay =
  QCheck.Test.make ~name:"fused replay: jobs 2/4 merge to jobs 1" ~count:15
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let tuned = Repack.repack flat (Repack.collect flat addrs ~len) in
      List.for_all
        (fun base ->
          let fused = Fuse.fuse base in
          let p1, s1 = sharded_snapshot fused ~insns addrs ~len 1 in
          (* the unfused sequential snapshot IS a profile *)
          let pseq = batch_snapshot base ~insns addrs ~len in
          List.for_all
            (fun jobs ->
              let pn, sn = sharded_snapshot fused ~insns addrs ~len jobs in
              Tea_parallel.Profile.equal p1 pn && snapshots_equal_mod_ic s1 sn)
            [ 2; 4 ]
          && Tea_parallel.Profile.equal p1 pseq)
        [ flat; tuned ])

(* ---------------- chain decomposition units ---------------- *)

(* A linear trace a -> b -> c -> d: a, b, c are forced (one successor
   each), d is a dead end, so the decomposition yields one straight
   chain of 3 members. *)
let test_straight_chain () =
  let tr =
    Trace.make ~id:0 ~kind:"fix"
      [| block_at 0x1000; block_at 0x2000; block_at 0x3000; block_at 0x4000 |]
      [| [ 1 ]; [ 2 ]; [ 3 ]; [] |]
  in
  let img = Packed.freeze (Builder.build [ tr ]) in
  let fused = Fuse.fuse img in
  check Alcotest.bool "fused" true (Packed.is_fused fused);
  check Alcotest.int "one chain" 1 (Packed.n_chains fused);
  check Alcotest.int "three members" 3 (Packed.fused_edges fused);
  check Alcotest.int "no cycles" 0 (Packed.n_cyclic_chains fused);
  check Alcotest.(array int) "length histogram" [| 3 |]
    (Packed.chain_lengths fused);
  (* source image untouched *)
  check Alcotest.bool "source unfused" false (Packed.is_fused img)

(* A self-loop: one block targeting itself is a 1-member cyclic chain,
   kept despite min_chain. *)
let test_self_loop_cyclic () =
  let tr =
    Trace.make ~id:0 ~kind:"fix" [| block_at 0x1000 |] [| [ 0 ] |]
  in
  let fused = Fuse.fuse (Packed.freeze (Builder.build [ tr ])) in
  check Alcotest.int "one chain" 1 (Packed.n_chains fused);
  check Alcotest.int "cyclic" 1 (Packed.n_cyclic_chains fused);
  check Alcotest.(array int) "single member" [| 1 |]
    (Packed.chain_lengths fused)

(* A back-edge loop a -> b -> c -> b: b has two forced predecessors so
   it heads the chain [b; c], whose last edge re-enters b — a cyclic
   chain the replayer may fast-forward. *)
let test_back_edge_cycle () =
  let tr =
    Trace.make ~id:0 ~kind:"fix"
      [| block_at 0x1000; block_at 0x2000; block_at 0x3000 |]
      [| [ 1 ]; [ 2 ]; [ 1 ] |]
  in
  let fused = Fuse.fuse (Packed.freeze (Builder.build [ tr ])) in
  check Alcotest.int "one cyclic chain" 1 (Packed.n_cyclic_chains fused);
  let lengths = Array.to_list (Packed.chain_lengths fused) in
  check Alcotest.bool "the loop body is a 2-chain" true
    (List.mem 2 lengths);
  (* replay a long spin of the loop and cross-check against the unfused
     engine — the fast-forward path in anger *)
  let spin =
    0x1000 :: List.concat (List.init 50 (fun _ -> [ 0x2000; 0x3000 ]))
  in
  let addrs = Array.of_list spin in
  let insns = Array.map (fun _ -> 1) addrs in
  let len = Array.length addrs in
  let base = Packed.freeze (Builder.build [ tr ]) in
  check Alcotest.bool "fast-forwarded replay identical" true
    (batch_snapshot base ~insns addrs ~len
    = batch_snapshot fused ~insns addrs ~len)

let test_min_chain_filter () =
  let tr =
    Trace.make ~id:0 ~kind:"fix"
      [| block_at 0x1000; block_at 0x2000; block_at 0x3000; block_at 0x4000 |]
      [| [ 1 ]; [ 2 ]; [ 3 ]; [] |]
  in
  let img = Packed.freeze (Builder.build [ tr ]) in
  (* raising min_chain above the longest run leaves the image unfused —
     and [fuse] then returns the source image itself *)
  let same = Fuse.fuse ~min_chain:4 img in
  check Alcotest.bool "no overlay" false (Packed.is_fused same);
  check Alcotest.bool "source returned" true (same == img);
  Alcotest.check_raises "min_chain 0 rejected"
    (Invalid_argument "Fuse.fuse: min_chain must be >= 1") (fun () ->
      ignore (Fuse.fuse ~min_chain:0 img))

(* ---------------- with_fusion validation ---------------- *)

let fused_fixture () =
  let tr =
    Trace.make ~id:0 ~kind:"fix"
      [| block_at 0x1000; block_at 0x2000; block_at 0x3000 |]
      [| [ 1 ]; [ 2 ]; [ 1 ] |]
  in
  let img = Packed.freeze (Builder.build [ tr ]) in
  (img, Option.get (Packed.fusion_of (Fuse.fuse img)))

let copy_fusion (f : Packed.fusion) =
  {
    Packed.fchain = Array.copy f.Packed.fchain;
    fpos = Array.copy f.Packed.fpos;
    foff = Array.copy f.Packed.foff;
    fcyc = Array.copy f.Packed.fcyc;
    fsig = Array.copy f.Packed.fsig;
    ftgt = Array.copy f.Packed.ftgt;
    fecost = Array.copy f.Packed.fecost;
  }

let test_with_fusion_validation () =
  let img, f = fused_fixture () in
  (* the untouched overlay is accepted *)
  ignore (Packed.with_fusion img (copy_fusion f));
  let expect_invalid name mutate =
    let c = copy_fusion f in
    mutate c;
    try
      ignore (Packed.with_fusion img c);
      Alcotest.failf "with_fusion accepted %s" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "chain on NTE" (fun c ->
      c.Packed.fchain.(0) <- 0;
      c.Packed.fpos.(0) <- 0);
  expect_invalid "chain id out of range" (fun c ->
      let s =
        (* first chained slot *)
        let r = ref (-1) in
        Array.iteri (fun i ch -> if !r < 0 && ch >= 0 then r := i) c.Packed.fchain;
        !r
      in
      c.Packed.fchain.(s) <- 7);
  expect_invalid "duplicate position" (fun c ->
      let a = ref (-1) and b = ref (-1) in
      Array.iteri
        (fun i ch ->
          if ch >= 0 then if !a < 0 then a := i else if !b < 0 then b := i)
        c.Packed.fchain;
      c.Packed.fpos.(!b) <- c.Packed.fpos.(!a);
      c.Packed.fchain.(!b) <- c.Packed.fchain.(!a));
  expect_invalid "signature mismatch" (fun c ->
      c.Packed.fsig.(0) <- c.Packed.fsig.(0) + 1);
  expect_invalid "target mismatch" (fun c ->
      c.Packed.ftgt.(0) <- c.Packed.ftgt.(0) + 1);
  expect_invalid "wrong edge cost" (fun c ->
      c.Packed.fecost.(0) <- c.Packed.fecost.(0) + 1);
  expect_invalid "nonzero fpos on unchained slot" (fun c ->
      let s =
        let r = ref (-1) in
        Array.iteri
          (fun i ch -> if !r < 0 && ch < 0 then r := i)
          c.Packed.fchain;
        !r
      in
      c.Packed.fpos.(s) <- 1);
  expect_invalid "non-monotone foff" (fun c ->
      c.Packed.foff.(Array.length c.Packed.foff - 1) <- 0);
  expect_invalid "bad fcyc flag" (fun c -> c.Packed.fcyc.(0) <- 2)

(* Corrupt TEAPK3 bytes must fail the load (via with_fusion), not
   produce an image that replays differently. *)
let test_teapk3_corruption_rejected () =
  let img, _ = fused_fixture () in
  let fused = Fuse.fuse img in
  let bin = Bytes.of_string (Serialize.packed_to_binary fused) in
  (* flip a byte inside the fsig array (last 3 arrays are fsig, ftgt,
     fecost; step back into fsig: 3 arrays x (4 + 2*4) bytes) *)
  let off = Bytes.length bin - (3 * 12) + 4 in
  Bytes.set bin off (Char.chr (1 + Char.code (Bytes.get bin off)));
  (try
     ignore (Serialize.packed_of_binary (Bytes.to_string bin));
     Alcotest.fail "corrupt TEAPK3 accepted"
   with Serialize.Parse_error _ -> ());
  (* unknown flags word rejected too *)
  let bin2 = Bytes.of_string (Serialize.packed_to_binary fused) in
  Bytes.set bin2 6 '\xFE';
  try
    ignore (Serialize.packed_of_binary (Bytes.to_string bin2));
    Alcotest.fail "unknown TEAPK3 flags accepted"
  with Serialize.Parse_error _ -> ()

(* ---------------- end to end: fused_replay on a real capture -------- *)

let listscan_fixture () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Packed.freeze (Builder.build traces) in
  let path = Filename.temp_file "tea_fuse" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  (flat, starts, insns, len)

let test_fused_replay_listscan () =
  let flat, starts, insns, len = listscan_fixture () in
  let fused, baseline, tuned = Fuse.fused_replay flat ~insns starts ~len in
  check Alcotest.bool "fused" true (Packed.is_fused fused);
  check Alcotest.bool "chains found" true (Packed.n_chains fused > 0);
  check Alcotest.bool "identical snapshots" true
    (Replayer.snapshot baseline = Replayer.snapshot tuned);
  (* fusion stacks on PGO repacking the same way *)
  let tuned_img, _, _ = Repack.pgo_replay flat ~insns starts ~len in
  let refused = Fuse.fuse tuned_img in
  check Alcotest.bool "fuses the repacked image too" true
    (Packed.is_fused refused && Packed.is_repacked refused);
  check Alcotest.bool "repacked+fused replay identical" true
    (batch_snapshot tuned_img ~insns starts ~len
    = batch_snapshot refused ~insns starts ~len);
  (* src counters untouched by the whole cycle *)
  check Alcotest.int "src stats untouched" 0
    (Packed.stats flat).Tea_core.Transition.steps

(* Profile-aware chain selection: listscan's cycle escapes through a
   bimodal state every lap or two, so its profiled expected run sits
   under the default threshold and the chain is gated out entirely —
   [fuse] returns the source image. A permissive threshold restores the
   structural result, and replay stays the identity under any choice. *)
let test_profile_filter () =
  let flat, starts, insns, len = listscan_fixture () in
  let profile = Repack.collect flat starts ~len in
  let gated = Fuse.fuse ~profile flat in
  check Alcotest.bool "low-benefit chain gated out" true (gated == flat);
  let permissive = Fuse.fuse ~profile ~min_expected_run:1.0 flat in
  check Alcotest.bool "permissive threshold keeps the cycle" true
    (Packed.is_fused permissive && Packed.n_chains permissive > 0);
  (* the whole-image coverage gate drops even run-filter survivors when
     the kept chains absorb too little of the stream *)
  let starved =
    Fuse.fuse ~profile ~min_expected_run:1.0 ~min_coverage:0.99 flat
  in
  check Alcotest.bool "coverage gate skips fusion" true (starved == flat);
  check Alcotest.bool "still the identity" true
    (batch_snapshot flat ~insns starts ~len
    = batch_snapshot permissive ~insns starts ~len);
  (* a profile shaped for a different image is rejected *)
  let other = Packed.freeze (Builder.build []) in
  check Alcotest.bool "shape mismatch rejected" true
    (match Fuse.fuse ~profile other with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- `info` golden on the listscan image ---------------- *)

let update_dir = Sys.getenv_opt "TEA_GOLDEN_UPDATE"

let golden_root =
  if Sys.file_exists "goldens" then "goldens"
  else Filename.concat "test" "goldens"

let check_golden_file name actual =
  match update_dir with
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc actual;
      close_out oc;
      Printf.printf "updated %s (%d bytes)\n%!" path (String.length actual)
  | None ->
      let path = Filename.concat golden_root name in
      let expected =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error _ ->
          Alcotest.failf
            "missing golden %s - regenerate with TEA_GOLDEN_UPDATE" path
      in
      if expected <> actual then begin
        let got = Filename.temp_file "tea_golden" ".got" in
        let oc = open_out_bin got in
        output_string oc actual;
        close_out oc;
        Alcotest.failf "golden mismatch for %s (actual output in %s)" name got
      end

(* What `tea_tool info` prints for the fused listscan image: the
   describe_packed rendering is a pure function of the arrays, so it is
   frozen byte for byte. *)
let test_info_golden () =
  let flat, _, _, _ = listscan_fixture () in
  let fused = Fuse.fuse flat in
  check_golden_file "info_listscan.txt"
    (Serialize.describe_packed flat ^ "--\n" ^ Serialize.describe_packed fused)

let () =
  Alcotest.run "tea_fuse"
    [
      ( "differential",
        [
          qtest prop_fusion_is_identity;
          qtest prop_fused_feed_run_equals_feed_addr;
          qtest prop_teapk3_roundtrip;
          qtest prop_sharded_fused_replay;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "straight chain" `Quick test_straight_chain;
          Alcotest.test_case "self-loop is cyclic" `Quick
            test_self_loop_cyclic;
          Alcotest.test_case "back-edge cycle fast-forwards" `Quick
            test_back_edge_cycle;
          Alcotest.test_case "min_chain filter" `Quick test_min_chain_filter;
        ] );
      ( "validation",
        [
          Alcotest.test_case "with_fusion rejects corrupt overlays" `Quick
            test_with_fusion_validation;
          Alcotest.test_case "corrupt TEAPK3 rejected" `Quick
            test_teapk3_corruption_rejected;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "fused_replay on listscan" `Quick
            test_fused_replay_listscan;
          Alcotest.test_case "profile-aware chain selection" `Quick
            test_profile_filter;
          Alcotest.test_case "info golden" `Quick test_info_golden;
        ] );
    ]
