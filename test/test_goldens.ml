(* Golden regression values: the whole pipeline is deterministic (seeded
   workload synthesis, no wall clock anywhere in the measurement path), so
   these exact numbers must reproduce on every run and every machine. Any
   change here means an intentional behaviour change in the workload
   generator, a recorder, the cost models or the accounting — update the
   goldens together with EXPERIMENTS.md when that happens. *)

let check = Alcotest.check

(* (dyn instrs, native cycles, mret traces, DBT bytes, TEA bytes,
   replay total cycles) *)
let goldens =
  [
    ("168.wupwise", (1809950, 3801009, 21, 3851, 525, 40977808));
    ("164.gzip", (3304839, 5473176, 38, 12746, 2249, 66840346));
    ("181.mcf", (4066096, 11987674, 30, 4200, 766, 158753249));
    ("253.perlbmk", (1357845, 3309323, 41, 8820, 1766, 44174136));
  ]

let mret = Option.get (Tea_traces.Registry.by_name "mret")

let measure name =
  let p = Option.get (Tea_workloads.Spec2000.by_name name) in
  let img = Tea_workloads.Spec2000.image p in
  let m, _ = Tea_machine.Interp.run img in
  let r = Tea_dbt.Stardbt.record ~strategy:mret img in
  let set = r.Tea_dbt.Stardbt.set in
  let auto = Tea_core.Builder.of_set set in
  let rep, _ =
    Tea_pinsim.Pintool_replay.replay ~traces:(Tea_traces.Trace_set.to_list set) img
  in
  ( Tea_machine.Interp.dyn_instrs m,
    Tea_machine.Interp.cycles m,
    Tea_traces.Trace_set.n_traces set,
    Tea_traces.Trace_set.dbt_bytes set img,
    Tea_core.Automaton.byte_size auto,
    rep.Tea_pinsim.Pintool_replay.total_cycles )

let test_golden (name, expected) () =
  let dyn, cyc, traces, dbt, tea, replay = measure name in
  let edyn, ecyc, etraces, edbt, etea, ereplay = expected in
  check Alcotest.int (name ^ " dynamic instructions") edyn dyn;
  check Alcotest.int (name ^ " native cycles") ecyc cyc;
  check Alcotest.int (name ^ " mret traces") etraces traces;
  check Alcotest.int (name ^ " DBT bytes") edbt dbt;
  check Alcotest.int (name ^ " TEA bytes") etea tea;
  check Alcotest.int (name ^ " replay cycles") ereplay replay

(* ---------------- Golden files ---------------- *)

(* Byte-for-byte frozen artifacts under test/goldens/: DOT renderings of
   three micro-workload automata and the Table 1 / Table 4 ASCII reports
   for a three-benchmark subset. Regenerate intentionally with

     TEA_GOLDEN_UPDATE=$PWD/test/goldens dune exec test/test_goldens.exe

   which rewrites the files in the source tree instead of comparing. *)

let update_dir = Sys.getenv_opt "TEA_GOLDEN_UPDATE"

(* `dune runtest` runs from _build/default/test (goldens/ materialized via
   the deps glob); `dune exec test/test_goldens.exe` runs from the project
   root, where the source copy lives *)
let golden_root =
  if Sys.file_exists "goldens" then "goldens" else Filename.concat "test" "goldens"

let check_golden_file name actual =
  match update_dir with
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc actual;
      close_out oc;
      Printf.printf "updated %s (%d bytes)\n%!" path (String.length actual)
  | None ->
      let path = Filename.concat golden_root name in
      let expected =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error _ ->
          Alcotest.failf
            "missing golden %s - regenerate with TEA_GOLDEN_UPDATE" path
      in
      if expected <> actual then begin
        (* dump the mismatch next to the golden for easy diffing *)
        let got = Filename.temp_file "tea_golden" ".got" in
        let oc = open_out_bin got in
        output_string oc actual;
        close_out oc;
        Alcotest.failf "golden mismatch for %s (actual output in %s)" name got
      end

let micro_automaton image =
  let r = Tea_dbt.Stardbt.record ~strategy:mret image in
  Tea_core.Builder.of_set r.Tea_dbt.Stardbt.set

let test_dot_golden (file, title, image) () =
  check_golden_file file
    (Tea_core.Dot.of_automaton ~title (micro_automaton (image ())))

let dot_goldens =
  [
    ("listscan.dot", "listscan", fun () -> Tea_workloads.Micro.list_scan ());
    ("branchy.dot", "branchy", fun () -> Tea_workloads.Micro.branchy_loop ());
    ("copy.dot", "copy", fun () -> Tea_workloads.Micro.copy_loop ());
  ]

let table_benchmarks = [ "168.wupwise"; "181.mcf"; "253.perlbmk" ]

let test_table_goldens () =
  let benches =
    Tea_report.Experiments.prepare ~benchmarks:table_benchmarks ()
  in
  check_golden_file "table1.txt"
    (Tea_report.Experiments.render_table1
       (Tea_report.Experiments.table1 benches));
  check_golden_file "table4.txt"
    (Tea_report.Experiments.render_table4
       (Tea_report.Experiments.table4 benches))

let () =
  Alcotest.run "tea_goldens"
    [
      ( "pipeline",
        List.map
          (fun ((name, _) as g) -> Alcotest.test_case name `Slow (test_golden g))
          goldens );
      ( "files",
        List.map
          (fun ((file, _, _) as g) ->
            Alcotest.test_case file `Quick (test_dot_golden g))
          dot_goldens
        @ [ Alcotest.test_case "tables" `Slow test_table_goldens ] );
    ]
