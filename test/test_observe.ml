(* The live introspection plane: drift comparator, histogram quantiles,
   exposition rendering, the JSONL event log, the TEAEP1 edge-profile
   codec, and the dispatch-tier profiler.

   The headline gate mirrors the daemon gate one level up: the tier
   snapshot accumulated by a live tea_serve fleet (batched feeder drain,
   jobs 1/2/4, flat and repacked+fused images) must equal — Tierstat
   pointwise — the snapshot of replaying the same streams offline,
   sequentially; and a scrape issued after the last session completed
   must return the server's exposition byte-for-byte, because scrapes
   are pure observers. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Pc_trace = Tea_core.Pc_trace
module Multi = Tea_core.Multi_replayer
module Tierstat = Tea_core.Tierstat
module Profile = Tea_parallel.Profile
module Metrics = Tea_telemetry.Metrics
module Repack = Tea_opt.Repack
module Drift = Tea_observe.Drift
module Events = Tea_observe.Events
module Exposition = Tea_observe.Exposition
module Frame = Tea_serve.Frame
module Server = Tea_serve.Server
module Client = Tea_serve.Client

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let feps = Alcotest.float 1e-9

let tierstat =
  Alcotest.testable
    (fun fmt (s : Tierstat.snapshot) ->
      Format.fprintf fmt "total=%d tiers=[%s] states=%d" (Tierstat.total s)
        (String.concat ";"
           (Array.to_list (Array.map string_of_int s.Tierstat.ts_totals)))
        (List.length s.Tierstat.ts_states))
    Tierstat.equal

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let with_tmp suffix f =
  let path = Filename.temp_file "tea_test_observe" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* Install the global dispatch-tier profiler around [f]; always
   uninstall, returning the final snapshot alongside [f]'s result. *)
let with_tierstat f =
  Tierstat.install ();
  match f () with
  | v -> (Tierstat.uninstall (), v)
  | exception e ->
      ignore (Tierstat.uninstall ());
      raise e

(* ---------------- drift comparator ---------------- *)

let test_drift_zero () =
  let counts = [ (0, 50); (3, 30); (7, 20) ] in
  let d = Drift.create counts in
  check feps "identical counts" 0.0 (Drift.measure d counts);
  (* scale invariance: only the mass distribution matters *)
  check feps "scaled counts" 0.0
    (Drift.measure d (List.map (fun (id, c) -> (id, 4 * c)) counts))

let test_drift_disjoint () =
  let d = Drift.create [ (0, 10) ] in
  check feps "disjoint supports" 2.0 (Drift.measure d [ (1, 10) ])

let test_drift_empty_live () =
  let d = Drift.create [ (0, 3); (1, 1) ] in
  check feps "empty live scores the reference mass" 1.0 (Drift.measure d []);
  let d0 = Drift.create [] in
  check feps "empty vs empty" 0.0 (Drift.measure d0 [])

let test_drift_monotone () =
  (* shift mass linearly from the tuned states onto new ones: the
     distance must be non-decreasing every step of the way *)
  let d = Drift.create [ (0, 50); (1, 30); (2, 20) ] in
  let live t =
    [ (0, 50 - (4 * t)); (1, 30 - (2 * t)); (2, 20 - t); (10, 4 * t); (11, 3 * t) ]
  in
  let dist = List.init 11 (fun t -> Drift.measure d (live t)) in
  check feps "t=0 is zero" 0.0 (List.hd dist);
  List.iteri
    (fun i x ->
      if i > 0 then
        check Alcotest.bool
          (Printf.sprintf "non-decreasing at t=%d" i)
          true
          (x >= List.nth dist (i - 1)))
    dist

let test_drift_threshold () =
  let d = Drift.create ~threshold:0.25 [ (0, 1) ] in
  check Alcotest.bool "at the threshold is not exceeded" false
    (Drift.exceeded d 0.25);
  check Alcotest.bool "past the threshold" true (Drift.exceeded d 0.2500001);
  check feps "default threshold" 0.25 Drift.default_threshold;
  check Alcotest.int "default k" 32 (Drift.k (Drift.create []))

let test_drift_inputs () =
  (* non-positive counts ignored, duplicate ids accumulate *)
  let d = Drift.create [ (5, -2); (7, 4); (7, 4) ] in
  check feps "dups accumulate, negatives drop" 0.0 (Drift.measure d [ (7, 8) ]);
  (match Drift.create ~k:0 [] with
  | _ -> Alcotest.fail "k = 0 must be rejected"
  | exception Invalid_argument _ -> ())

(* ---------------- histogram quantiles ---------------- *)

let hist_of samples =
  let reg = Metrics.create () in
  List.iter (fun v -> Metrics.observe_value reg "h" v) samples;
  match Metrics.find_histogram (Metrics.snapshot reg) "h" with
  | Some h -> h
  | None -> Alcotest.fail "histogram not in snapshot"

let test_quantile_empty () =
  let empty = { Metrics.hs_count = 0; hs_sum = 0; hs_buckets = [] } in
  check feps "empty histogram" 0.0 (Metrics.quantile empty 0.5)

let test_quantile_exact () =
  (* three samples in [1,2) and one in [64,128): the upper quantiles
     land exactly on the top bucket's upper bound *)
  let h = hist_of [ 1; 1; 1; 100 ] in
  check feps "p95" 128.0 (Metrics.p95 h);
  check feps "p99" 128.0 (Metrics.p99 h);
  let p50 = Metrics.p50 h in
  check Alcotest.bool "p50 inside its bucket" true (p50 >= 1.0 && p50 < 2.0);
  (* all-zero samples are the point value 0 *)
  let z = hist_of [ 0; 0; 0 ] in
  check feps "p50 of zeros" 0.0 (Metrics.p50 z);
  check feps "p99 of zeros" 0.0 (Metrics.p99 z)

let test_quantile_clamp () =
  let h = hist_of [ 1; 1; 1; 100 ] in
  check feps "q < 0 clamps to 0" (Metrics.quantile h 0.0)
    (Metrics.quantile h (-5.0));
  check feps "q > 1 clamps to 1" (Metrics.quantile h 1.0)
    (Metrics.quantile h 2.0)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:100
    (QCheck.make
       QCheck.Gen.(
         triple
           (list_size (int_range 1 50) (int_range 0 100_000))
           (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (samples, q1, q2) ->
      let h = hist_of samples in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Metrics.quantile h lo <= Metrics.quantile h hi)

(* ---------------- exposition helpers ---------------- *)

let test_sanitize_name () =
  check Alcotest.string "dots" "serve_bytes_in"
    (Metrics.sanitize_name "serve.bytes_in");
  check Alcotest.string "leading digit" "_9lives" (Metrics.sanitize_name "9lives");
  check Alcotest.string "empty" "_" (Metrics.sanitize_name "");
  check Alcotest.string "colon kept" "a:b" (Metrics.sanitize_name "a:b");
  check Alcotest.string "spaces and quotes" "a_b_c"
    (Metrics.sanitize_name "a b\"c")

let test_escape_label () =
  check Alcotest.string "backslash, quote, newline" "a\\\"b\\\\c\\nd"
    (Metrics.escape_label "a\"b\\c\nd");
  check Alcotest.string "plain" "plain" (Metrics.escape_label "plain")

let test_exposition_render () =
  let reg = Metrics.create () in
  Metrics.count reg "serve.bytes_in" 7;
  Metrics.count reg "9 weird name" 1;
  Metrics.observe_value reg "lat" 0;
  Metrics.observe_value reg "lat" 3;
  let tiers =
    {
      Tierstat.ts_totals = [| 3; 0; 1; 0; 0; 2; 4 |];
      ts_states =
        [ (0, [| 3; 0; 0; 0; 0; 0; 0 |]); (4, [| 0; 0; 1; 0; 0; 2; 4 |]) ];
    }
  in
  let got =
    Exposition.render ~tiers
      ~translate:(fun st -> 10 - st)
      ~drift:(0.5, 0.25) (Metrics.snapshot reg)
  in
  let expect =
    "# TYPE tea_counter counter\n\
     tea_counter{name=\"_9_weird_name\"} 1\n\
     tea_counter{name=\"serve_bytes_in\"} 7\n\
     # TYPE tea_histogram histogram\n\
     tea_histogram_bucket{name=\"lat\",le=\"0\"} 1\n\
     tea_histogram_bucket{name=\"lat\",le=\"3\"} 2\n\
     tea_histogram_bucket{name=\"lat\",le=\"+Inf\"} 2\n\
     tea_histogram_count{name=\"lat\"} 2\n\
     tea_histogram_sum{name=\"lat\"} 3\n\
     tea_histogram_quantile{name=\"lat\",q=\"0.5\"} 0\n\
     tea_histogram_quantile{name=\"lat\",q=\"0.95\"} 4\n\
     tea_histogram_quantile{name=\"lat\",q=\"0.99\"} 4\n\
     # TYPE tea_dispatch_tier_total counter\n\
     tea_dispatch_tier_total{tier=\"ic\"} 3\n\
     tea_dispatch_tier_total{tier=\"hot\"} 0\n\
     tea_dispatch_tier_total{tier=\"search\"} 1\n\
     tea_dispatch_tier_total{tier=\"hash\"} 0\n\
     tea_dispatch_tier_total{tier=\"miss\"} 0\n\
     tea_dispatch_tier_total{tier=\"fused\"} 2\n\
     tea_dispatch_tier_total{tier=\"compiled\"} 4\n\
     # TYPE tea_dispatch_state_total counter\n\
     tea_dispatch_state_total{state=\"6\",tier=\"search\"} 1\n\
     tea_dispatch_state_total{state=\"6\",tier=\"fused\"} 2\n\
     tea_dispatch_state_total{state=\"6\",tier=\"compiled\"} 4\n\
     tea_dispatch_state_total{state=\"10\",tier=\"ic\"} 3\n\
     # TYPE tea_drift_l1 gauge\n\
     tea_drift_l1 0.5\n\
     # TYPE tea_drift_threshold gauge\n\
     tea_drift_threshold 0.25\n"
  in
  check Alcotest.string "rendered exposition" expect got;
  (* deterministic: a function of the snapshots alone *)
  check Alcotest.string "render is deterministic" got
    (Exposition.render ~tiers
       ~translate:(fun st -> 10 - st)
       ~drift:(0.5, 0.25) (Metrics.snapshot reg));
  check Alcotest.string "empty snapshot renders empty" ""
    (Exposition.render Metrics.empty)

(* ---------------- JSONL event log ---------------- *)

let test_events_golden () =
  with_tmp ".jsonl" @@ fun path ->
  let e = Events.open_file ~clock:(fun () -> 42.03125) path in
  Events.emit e "session_open" [ ("session", Events.I 3) ];
  Events.emit e "note"
    [ ("msg", Events.S "a\"b\\c\nd"); ("x", Events.F 0.5) ];
  Events.close e;
  let expect =
    "{\"seq\":0,\"ts\":42.031250,\"event\":\"session_open\",\"session\":3}\n\
     {\"seq\":1,\"ts\":42.031250,\"event\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\",\"x\":0.500000}\n"
  in
  check Alcotest.string "JSONL golden" expect (read_file path)

(* ---------------- TEAEP1 edge-profile codec ---------------- *)

let expect_failure name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure _ -> ()

let test_teaep_roundtrip () =
  let prof =
    {
      Repack.visits = [| 0; 5; 300_000; 1 |];
      taken = [| 1; 0; 7; 128; 3 |];
      misses = [| 2; 0; 0; 9 |];
    }
  in
  with_tmp ".teaep" @@ fun path ->
  Repack.save_profile path prof;
  check Alcotest.bool "roundtrip" true (Repack.load_profile path = prof);
  let bytes = read_file path in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  write "NOTAPROFILE";
  expect_failure "bad magic" (fun () -> Repack.load_profile path);
  write (String.sub bytes 0 (String.length bytes - 1));
  expect_failure "truncation" (fun () -> Repack.load_profile path);
  write (bytes ^ "\x00");
  expect_failure "trailing bytes" (fun () -> Repack.load_profile path)

(* ---------------- fixtures (the test_serve shape) ---------------- *)

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

let t1 =
  Trace.linear ~id:0 ~kind:"test" [ block_at 0x100; block_at 0x200; block_at 0x300 ]

let t2 = Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ]

let fixture_packed () = Packed.freeze (Builder.build [ t1; t2 ])

let fixture_starts () =
  Array.init 60 (fun i ->
      List.nth [ 0x100; 0x200; 0x300; 0x400; 0x300 ] (i mod 5))

let fixture_repacked () =
  let packed = fixture_packed () in
  let starts = fixture_starts () in
  Repack.repack packed (Repack.collect packed starts ~len:(Array.length starts))

let fixture_tuned () =
  let packed = fixture_repacked () in
  let starts = fixture_starts () in
  let prof = Repack.collect packed starts ~len:(Array.length starts) in
  Tea_opt.Fuse.fuse ~profile:prof packed

let bytes_of_events ?(format = Pc_trace.V3) events =
  with_tmp ".trc" @@ fun path ->
  let w = Pc_trace.open_writer ~format path in
  List.iter (Pc_trace.write_event w) events;
  Pc_trace.close_writer w;
  Pc_trace.read_all path

let stamped_of_bytes s =
  with_tmp ".trc" @@ fun path ->
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  List.rev
    (Pc_trace.fold_events path [] (fun acc ~asid ev -> (asid, ev) :: acc))

let count_blocks s =
  List.length
    (List.filter
       (fun (_, ev) -> match ev with Pc_trace.Block _ -> true | _ -> false)
       (stamped_of_bytes s))

let offline_of_bytes image s =
  with_tmp ".trc" @@ fun path ->
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  let m =
    Multi.replay_events (fun _ -> Replayer.create_packed (Packed.dup image)) path
  in
  Profile.merge_all (List.map snd (Multi.snapshots m))

let sock_path () =
  let p = Filename.temp_file "tea_test_observe" ".sock" in
  Sys.remove p;
  p

let mixed_streams () =
  let v2 hot =
    bytes_of_events ~format:Pc_trace.V2
      (List.init 40 (fun i ->
           Pc_trace.Block
             { start = List.nth hot (i mod List.length hot); insns = 1 }))
  in
  let v3 =
    bytes_of_events
      [ Pc_trace.Block { start = 0x100; insns = 1 };
        Pc_trace.Switch { asid = 2 };
        Pc_trace.Block { start = 0x400; insns = 1 };
        Pc_trace.Block { start = 0x300; insns = 1 };
        Pc_trace.Interrupt;
        Pc_trace.Switch { asid = 0 };
        Pc_trace.Block { start = 0x200; insns = 1 };
        Pc_trace.Invalidate { asid = 2 };
        Pc_trace.Switch { asid = 2 };
        Pc_trace.Block { start = 0x400; insns = 1 } ]
  in
  [ v2 [ 0x100; 0x200; 0x300 ];
    v2 [ 0x400; 0x300 ];
    v2 [ 0x100; 0x900; 0x200 ];
    v2 [ 0x5000 ];
    v3;
    v2 [ 0x300; 0x400 ];
    v3 ]

(* ---------------- dispatch-tier profiler ---------------- *)

let prop_tier_sum =
  (* every resolved block lands in exactly one tier, and the per-state
     rows partition the totals *)
  let gen_events =
    let open QCheck.Gen in
    let block =
      map2
        (fun start insns -> Pc_trace.Block { start; insns })
        (int_range 0 0xFFFF) (int_range 0 4)
    in
    let ev =
      frequency
        [ (6, block);
          (1, map (fun asid -> Pc_trace.Switch { asid }) (int_range 0 3));
          (1, map (fun asid -> Pc_trace.Invalidate { asid }) (int_range 0 3));
          (1, return Pc_trace.Interrupt) ]
    in
    list_size (int_range 0 120) ev
  in
  QCheck.Test.make ~name:"tier counters sum to blocks replayed" ~count:30
    (QCheck.make gen_events) (fun events ->
      let s = bytes_of_events events in
      let blocks = count_blocks s in
      let image = fixture_tuned () in
      let snap, () =
        with_tierstat (fun () -> ignore (offline_of_bytes image s))
      in
      let state_sums = Array.make Tierstat.n_tiers 0 in
      List.iter
        (fun (_, row) ->
          Array.iteri (fun t v -> state_sums.(t) <- state_sums.(t) + v) row)
        snap.Tierstat.ts_states;
      Tierstat.total snap = blocks && state_sums = snap.Tierstat.ts_totals)

let test_feeder_feed_tiers () =
  (* event-at-a-time feeding and the batching feeder attribute tiers
     identically on flat and repacked images (fused images resolve
     batched runs through the fused tier by design, so they are out of
     scope here — the live==offline gate covers them, both sides
     batched) *)
  let evs = List.concat_map stamped_of_bytes (mixed_streams ()) in
  List.iter
    (fun image_of ->
      let image = image_of () in
      let fed, () =
        with_tierstat (fun () ->
            let m =
              Multi.create (fun _ -> Replayer.create_packed (Packed.dup image))
            in
            List.iter (fun (asid, ev) -> Multi.feed m ~asid ev) evs)
      in
      let image = image_of () in
      let batched, () =
        with_tierstat (fun () ->
            let m =
              Multi.create (fun _ -> Replayer.create_packed (Packed.dup image))
            in
            let f = Multi.feeder ~buf:3 m in
            List.iter (fun (asid, ev) -> Multi.feeder_feed f ~asid ev) evs;
            Multi.feeder_flush f)
      in
      check tierstat "feeder == feed" fed batched)
    [ fixture_packed; fixture_repacked ]

(* ---------------- the live gate ---------------- *)

(* Serve [streams] sequentially through a live daemon with the tier
   profiler installed and a drift comparator attached; scrape before the
   first session and after the last, and read the offline exposition
   after the driver returned. *)
let serve_observed ~jobs ~image ~drift streams =
  with_tierstat @@ fun () ->
  let srv = Server.create ~jobs ~image ~drift (Frame.Unix_sock (sock_path ())) in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run srv) in
  let first = Client.scrape (Server.addr srv) in
  List.iter
    (fun s -> ignore (Client.replay_string ~chunk:7 (Server.addr srv) s))
    streams;
  let last = Client.scrape (Server.addr srv) in
  Server.stop srv;
  Domain.join driver;
  let expo = Server.exposition srv in
  ( first,
    last,
    expo,
    Server.drift_distance srv,
    Server.metrics srv,
    Server.completed srv,
    Server.disconnected srv )

let test_live_equals_offline () =
  List.iter
    (fun image_of ->
      let streams = mixed_streams () in
      let blocks_expected =
        List.fold_left (fun acc s -> acc + count_blocks s) 0 streams
      in
      let ref_image = image_of () in
      let offline_snap, offline_fleet =
        with_tierstat (fun () ->
            Profile.merge_all (List.map (offline_of_bytes ref_image) streams))
      in
      check Alcotest.int "offline tier sum == blocks" blocks_expected
        (Tierstat.total offline_snap);
      List.iter
        (fun jobs ->
          let image = image_of () in
          (* tune the comparator to the very profile this fleet will
             produce: the live gauge must come back exactly zero *)
          let drift = Drift.create offline_fleet.Profile.counts in
          let live_snap, (first, last, expo, dd, m, completed, disconnected)
              =
            serve_observed ~jobs ~image ~drift streams
          in
          check tierstat
            (Printf.sprintf "live tiers == offline (jobs %d)" jobs)
            offline_snap live_snap;
          check Alcotest.string "post-run scrape == exposition" expo last;
          check Alcotest.bool "pre-run scrape differs" true (first <> last);
          (match dd with
          | Some (d, th) ->
              check feps "drift gauge is zero against its own fleet" 0.0 d;
              check feps "threshold" Drift.default_threshold th
          | None -> Alcotest.fail "drift_distance expected");
          check Alcotest.bool "tier family exposed" true
            (contains last "tea_dispatch_tier_total{tier=\"ic\"}");
          check Alcotest.bool "drift gauge exposed" true
            (contains last "tea_drift_l1 0\n");
          check Alcotest.bool "session histograms exposed" true
            (contains last "tea_histogram_bucket{name=\"serve_session_blocks\"");
          check Alcotest.int "completed" (List.length streams) completed;
          check Alcotest.int "scrapes are not disconnects" 0 disconnected;
          check
            Alcotest.(option int)
            "blocks counter" (Some blocks_expected)
            (Metrics.find_counter m "serve.blocks");
          check
            Alcotest.(option int)
            "sessions_completed"
            (Some (List.length streams))
            (Metrics.find_counter m "serve.sessions_completed"))
        [ 1; 2; 4 ])
    [ fixture_packed; fixture_tuned ]

let test_scrape_not_a_session () =
  (* scrapes must not count toward until_sessions, completions or
     disconnects, and must render even before any session arrived *)
  let image = fixture_packed () in
  let streams = mixed_streams () in
  let srv = Server.create ~jobs:2 ~image (Frame.Unix_sock (sock_path ())) in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run ~until_sessions:2 srv) in
  let s0 = Client.scrape (Server.addr srv) in
  check Alcotest.bool "cold scrape renders the tier family" true
    (contains s0 "tea_dispatch_tier_total{tier=\"miss\"} 0");
  ignore (Client.replay_string (Server.addr srv) (List.nth streams 0));
  let s1 = Client.scrape (Server.addr srv) in
  check Alcotest.bool "mid-run scrape sees the first session" true
    (contains s1 "tea_counter{name=\"serve_sessions_completed\"} 1");
  ignore (Client.replay_string (Server.addr srv) (List.nth streams 1));
  (* until_sessions = 2: the two scrapes did not count, so the driver
     returns exactly now *)
  Domain.join driver;
  check Alcotest.int "completed" 2 (Server.completed srv);
  check Alcotest.int "no disconnects" 0 (Server.disconnected srv)

let test_daemon_events () =
  (* the daemon's JSONL stream: open/close per completed session,
     open/abort for a rude client, seqs dense and in order *)
  let image = fixture_packed () in
  with_tmp ".jsonl" @@ fun path ->
  let events = Events.open_file ~clock:(fun () -> 1.5) path in
  let srv = Server.create ~jobs:2 ~image ~events (Frame.Unix_sock (sock_path ())) in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run ~until_sessions:3 srv) in
  let s = List.hd (mixed_streams ()) in
  ignore (Client.replay_string (Server.addr srv) s);
  ignore (Client.replay_string (Server.addr srv) s);
  (match Client.replay_string (Server.addr srv) "FOOBARBAZ" with
  | _ -> Alcotest.fail "corrupt stream must be rejected"
  | exception Client.Server_error _ -> ());
  Domain.join driver;
  Events.close events;
  let lines = String.split_on_char '\n' (String.trim (read_file path)) in
  let kind_of line =
    match String.index_opt line ':' with
    | None -> "?"
    | Some _ ->
        (* {"seq":N,"ts":T,"event":"kind",...} *)
        let marker = "\"event\":\"" in
        let rec find i =
          if i + String.length marker > String.length line then "?"
          else if String.sub line i (String.length marker) = marker then begin
            let start = i + String.length marker in
            let stop = String.index_from line start '"' in
            String.sub line start (stop - start)
          end
          else find (i + 1)
        in
        find 0
  in
  check
    Alcotest.(list string)
    "event kinds in order"
    [ "session_open"; "session_close"; "session_open"; "session_close";
      "session_open"; "session_abort" ]
    (List.map kind_of lines);
  List.iteri
    (fun i line ->
      let prefix = Printf.sprintf "{\"seq\":%d,\"ts\":1.500000," i in
      check Alcotest.bool
        (Printf.sprintf "line %d has a dense seq and the fixed clock" i)
        true
        (String.length line >= String.length prefix
        && String.sub line 0 (String.length prefix) = prefix))
    lines

let () =
  Alcotest.run "tea_observe"
    [
      ( "drift",
        [
          Alcotest.test_case "zero on identical profiles" `Quick test_drift_zero;
          Alcotest.test_case "two on disjoint supports" `Quick
            test_drift_disjoint;
          Alcotest.test_case "empty live" `Quick test_drift_empty_live;
          Alcotest.test_case "monotone under mass shift" `Quick
            test_drift_monotone;
          Alcotest.test_case "threshold edge" `Quick test_drift_threshold;
          Alcotest.test_case "input hygiene" `Quick test_drift_inputs;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "exact on bucket bounds" `Quick test_quantile_exact;
          Alcotest.test_case "clamping" `Quick test_quantile_clamp;
          qtest prop_quantile_monotone;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "sanitize_name" `Quick test_sanitize_name;
          Alcotest.test_case "escape_label" `Quick test_escape_label;
          Alcotest.test_case "deterministic render" `Quick
            test_exposition_render;
        ] );
      ( "events",
        [ Alcotest.test_case "JSONL golden" `Quick test_events_golden ] );
      ( "teaep",
        [ Alcotest.test_case "TEAEP1 round-trip" `Quick test_teaep_roundtrip ] );
      ( "tiers",
        [
          qtest prop_tier_sum;
          Alcotest.test_case "feeder == feed attribution" `Quick
            test_feeder_feed_tiers;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "gate: live == offline, scrape == exposition"
            `Quick test_live_equals_offline;
          Alcotest.test_case "scrapes are pure observers" `Quick
            test_scrape_not_a_session;
          Alcotest.test_case "JSONL event stream" `Quick test_daemon_events;
        ] );
    ]
