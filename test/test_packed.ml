(* Differential tests of the packed flat-array replay engine against the
   reference Transition engine: same DFA, two implementations. The packed
   engine must reproduce the reference engine's state sequences, coverage
   and profiles bit-for-bit on arbitrary automata and address streams —
   that equivalence is what makes the fast path trustworthy. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Transition = Tea_core.Transition
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Serialize = Tea_core.Serialize
module Pc_trace = Tea_core.Pc_trace

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* Fixtures shared with test_core: T1 cycles 0x100->0x200->0x300->0x100,
   T2 chains 0x400->0x300 (0x300 duplicated across traces). *)
let t1 =
  Trace.linear ~id:0 ~kind:"test" ~cycle:true
    [ block_at 0x100; block_at 0x200; block_at 0x300 ]

let t2 = Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ]

(* ---------------- Random workload generation ---------------- *)

(* A pool of block addresses; streams also draw from the tail addresses no
   trace ever contains, to exercise the NTE miss path. *)
let pool_size = 16

let pool i = 0x1000 + (0x10 * (i mod (pool_size + 4)))

(* A generated trace: up to 6 TBBs over the pool, each state with up to 3
   in-trace successors (deduplicated by label so the automaton stays
   deterministic). Multi-successor states give the packed engine spans
   longer than one entry — the binary search actually searches. *)
let gen_trace id rand =
  let open QCheck.Gen in
  let n = int_range 1 6 rand in
  let idxs = Array.init n (fun _ -> int_range 0 (pool_size - 1) rand) in
  let blocks = Array.map (fun i -> block_at (pool i)) idxs in
  let succs =
    Array.init n (fun _ ->
        let k = int_range 0 3 rand in
        let chosen = List.init k (fun _ -> int_range 0 (n - 1) rand) in
        (* one successor per distinct label (= target block start) *)
        let seen = Hashtbl.create 4 in
        List.filter
          (fun j ->
            let label = pool idxs.(j) in
            if Hashtbl.mem seen label then false
            else begin
              Hashtbl.add seen label ();
              true
            end)
          chosen)
  in
  Trace.make ~id ~kind:"gen" blocks succs

type workload = {
  w_traces : Trace.t list;
  w_stream : (int * int) list; (* (address, insns) *)
  w_config : int;
}

let gen_workload =
  let open QCheck.Gen in
  let gen rand =
    let n_traces = int_range 1 5 rand in
    let w_traces = List.init n_traces (fun id -> gen_trace id rand) in
    let n_steps = int_range 0 200 rand in
    let w_stream =
      List.init n_steps (fun _ ->
          (pool (int_range 0 (pool_size + 3) rand), int_range 0 4 rand))
    in
    { w_traces; w_stream; w_config = int_range 0 2 rand }
  in
  QCheck.make
    ~print:(fun w ->
      Printf.sprintf "traces=%d stream=%d config=%d"
        (List.length w.w_traces) (List.length w.w_stream) w.w_config)
    gen

let config_of = function
  | 0 -> Transition.config_global_local
  | 1 -> Transition.config_global_no_local
  | _ -> Transition.config_no_global_local

type observation = {
  o_states : Automaton.state list;
  o_covered : int;
  o_total : int;
  o_enters : int;
  o_exits : int;
  o_counts : (Automaton.state * int) list;
  o_stats : int * int * int * int * int;
}

let observe rep stream feed =
  let states = List.map (fun (addr, insns) -> feed rep addr insns) stream in
  let st = Replayer.stats rep in
  {
    o_states = states;
    o_covered = Replayer.covered_insns rep;
    o_total = Replayer.total_insns rep;
    o_enters = Replayer.trace_enters rep;
    o_exits = Replayer.trace_exits rep;
    o_counts = Replayer.tbb_counts rep;
    o_stats =
      ( st.Transition.steps,
        st.Transition.in_trace_hits,
        st.Transition.cache_hits,
        st.Transition.global_hits,
        st.Transition.global_misses );
  }

let feed_one rep addr insns =
  Replayer.feed_addr rep ~insns addr;
  Replayer.state rep

(* The differential property: reference and packed replays of the same
   workload agree on every observable. *)
let prop_packed_equals_reference =
  QCheck.Test.make ~name:"packed replay == reference replay" ~count:300
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      if Automaton.check_deterministic auto <> Ok () then
        QCheck.Test.fail_report "generated automaton not deterministic";
      let reference =
        observe
          (Replayer.create (Transition.create (config_of w.w_config) auto))
          w.w_stream feed_one
      in
      let packed_img = Packed.freeze auto in
      let packed =
        observe (Replayer.create_packed packed_img) w.w_stream feed_one
      in
      let rs, ri, rc, rg, rm = reference.o_stats in
      let ps, pi, pc, pg, pm = packed.o_stats in
      reference.o_states = packed.o_states
      && reference.o_covered = packed.o_covered
      && reference.o_total = packed.o_total
      && reference.o_enters = packed.o_enters
      && reference.o_exits = packed.o_exits
      && reference.o_counts = packed.o_counts
      && rs = ps && ri = pi && rm = pm
      (* packed has no local caches: cross-trace resolutions the reference
         engine splits between cache and container all land in global_hits *)
      && pc = 0
      && pg = rc + rg
      && Packed.check packed_img auto = Ok ())

(* Round-tripping the packed image through bytes must not change replay
   behaviour in any observable way. *)
let prop_serialized_packed_equals_fresh =
  QCheck.Test.make ~name:"packed_of_binary(packed_to_binary) replays identically"
    ~count:100 gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let packed = Packed.freeze auto in
      let loaded = Serialize.packed_of_binary (Serialize.packed_to_binary packed) in
      let a = observe (Replayer.create_packed packed) w.w_stream feed_one in
      let b = observe (Replayer.create_packed loaded) w.w_stream feed_one in
      a = b
      && Packed.n_states loaded = Packed.n_states packed
      && Packed.n_edges loaded = Packed.n_edges packed
      && Packed.n_heads loaded = Packed.n_heads packed)

(* Batched feed_run must be exactly len feed_addr calls, on both engines. *)
let prop_feed_run_equals_feed_addr =
  QCheck.Test.make ~name:"feed_run == repeated feed_addr" ~count:100
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let addrs = Array.of_list (List.map fst w.w_stream) in
      let insns = Array.of_list (List.map snd w.w_stream) in
      let len = Array.length addrs in
      let engines =
        [
          (fun () -> Replayer.create (Transition.create (config_of w.w_config) auto));
          (fun () -> Replayer.create_packed (Packed.freeze auto));
        ]
      in
      List.for_all
        (fun mk ->
          let one = mk () in
          List.iter (fun (addr, ins) -> Replayer.feed_addr one ~insns:ins addr) w.w_stream;
          let batched = mk () in
          Replayer.feed_run batched ~insns addrs ~len;
          let s1 = Replayer.stats one and s2 = Replayer.stats batched in
          Replayer.state one = Replayer.state batched
          && Replayer.coverage one = Replayer.coverage batched
          && Replayer.tbb_counts one = Replayer.tbb_counts batched
          && Replayer.trace_enters one = Replayer.trace_enters batched
          && Replayer.trace_exits one = Replayer.trace_exits batched
          (* the packed batch loop replicates the step logic inline, so the
             simulated cost accounting must agree exactly too *)
          && s1.Transition.steps = s2.Transition.steps
          && s1.Transition.in_trace_hits = s2.Transition.in_trace_hits
          && s1.Transition.cache_hits = s2.Transition.cache_hits
          && s1.Transition.global_hits = s2.Transition.global_hits
          && s1.Transition.global_misses = s2.Transition.global_misses
          && Replayer.cycles one = Replayer.cycles batched)
        engines)

(* ---------------- Freeze / layout unit tests ---------------- *)

let test_freeze_shape () =
  let auto = Builder.build [ t1; t2 ] in
  let p = Packed.freeze auto in
  check Alcotest.int "live states" (Automaton.n_states auto) (Packed.n_states p);
  (* n_transitions counts NTE->head entries too; packed keeps those in the
     hash, not the edge spans *)
  check Alcotest.int "in-trace edges" 4 (Packed.n_edges p);
  check Alcotest.int "heads" 2 (Packed.n_heads p);
  check Alcotest.(option int) "head 0x100" (Automaton.head_of auto 0x100)
    (Packed.head_of p 0x100);
  check Alcotest.(option int) "head 0x400" (Automaton.head_of auto 0x400)
    (Packed.head_of p 0x400);
  check Alcotest.(option int) "head miss" None (Packed.head_of p 0x999);
  check Alcotest.bool "self-check" true (Packed.check p auto = Ok ());
  let r = Packed.to_raw p in
  check Alcotest.int "offsets cover edges"
    (Array.length r.Packed.labels)
    r.Packed.offsets.(Array.length r.Packed.offsets - 1);
  (* NTE (state 0) has an empty span: its transitions live in the hash *)
  check Alcotest.int "nte span empty" 0 r.Packed.offsets.(1)

let test_step_matches_reference_fixture () =
  let auto = Builder.build [ t1; t2 ] in
  let p = Packed.freeze auto in
  let h1 = Option.get (Automaton.head_of auto 0x100) in
  check Alcotest.int "enter t1" h1 (Packed.step p Automaton.nte 0x100);
  let s2 = Option.get (Automaton.next_in_trace auto h1 0x200) in
  check Alcotest.int "in-trace" s2 (Packed.step p h1 0x200);
  (* trace-to-trace transfer goes through the hash *)
  let h2 = Option.get (Automaton.head_of auto 0x400) in
  check Alcotest.int "cross-trace" h2 (Packed.step p h1 0x400);
  check Alcotest.int "cold pc to NTE" Automaton.nte (Packed.step p h1 0x9999);
  let st = Packed.stats p in
  check Alcotest.int "steps" 4 st.Transition.steps;
  check Alcotest.int "in-trace hits" 1 st.Transition.in_trace_hits;
  check Alcotest.int "global hits" 2 st.Transition.global_hits;
  check Alcotest.int "misses" 1 st.Transition.global_misses;
  check Alcotest.int "no caches" 0 st.Transition.cache_hits;
  check Alcotest.bool "cycles charged" true (Packed.cycles p > 0);
  Packed.reset_counters p;
  check Alcotest.int "reset" 0 (Packed.stats p).Transition.steps;
  check Alcotest.int "reset cycles" 0 (Packed.cycles p)

let test_stale_after_mutation () =
  let auto = Builder.build [ t1 ] in
  let p = Packed.freeze auto in
  check Alcotest.bool "fresh" true (Packed.check p auto = Ok ());
  Automaton.add_trace auto t2;
  check Alcotest.bool "stale detected" true (Packed.check p auto <> Ok ());
  (* re-freezing picks the new trace up *)
  let p' = Packed.freeze auto in
  check Alcotest.bool "refrozen" true (Packed.check p' auto = Ok ());
  check Alcotest.bool "new head visible" true (Packed.head_of p' 0x400 <> None)

let test_step_bad_state () =
  let p = Packed.freeze (Builder.build [ t1 ]) in
  Alcotest.check_raises "way out of range"
    (Invalid_argument "Packed.step: state id outside the frozen image")
    (fun () -> ignore (Packed.step p 9999 0x100));
  Alcotest.check_raises "negative"
    (Invalid_argument "Packed.step: state id outside the frozen image")
    (fun () -> ignore (Packed.step p (-1) 0x100))

let test_empty_automaton () =
  let p = Packed.freeze (Automaton.create ()) in
  check Alcotest.int "no states" 0 (Packed.n_states p);
  check Alcotest.int "no edges" 0 (Packed.n_edges p);
  check Alcotest.int "no heads" 0 (Packed.n_heads p);
  check Alcotest.int "everything is NTE" Automaton.nte
    (Packed.step p Automaton.nte 0x100);
  check Alcotest.int "miss counted" 1 (Packed.stats p).Transition.global_misses

let test_state_insns () =
  let auto = Builder.build [ t1 ] in
  let p = Packed.freeze auto in
  let h = Option.get (Automaton.head_of auto 0x100) in
  check Alcotest.int "head insns" 1 (Packed.state_insns p h);
  check Alcotest.int "nte insns" 0 (Packed.state_insns p Automaton.nte);
  check Alcotest.int "out of range" 0 (Packed.state_insns p 12345)

(* ---------------- Replayer fast path ---------------- *)

let test_feed_run_validation () =
  let rep = Replayer.create_packed (Packed.freeze (Builder.build [ t1 ])) in
  let addrs = [| 0x100; 0x200 |] in
  Alcotest.check_raises "len too large"
    (Invalid_argument "Replayer.feed_run: len out of range") (fun () ->
      Replayer.feed_run rep addrs ~len:3);
  Alcotest.check_raises "negative len"
    (Invalid_argument "Replayer.feed_run: len out of range") (fun () ->
      Replayer.feed_run rep addrs ~len:(-1));
  Alcotest.check_raises "short insns"
    (Invalid_argument "Replayer.feed_run: insns array shorter than len")
    (fun () -> Replayer.feed_run rep ~insns:[| 1 |] addrs ~len:2);
  (* a len prefix is allowed *)
  Replayer.feed_run rep addrs ~len:1;
  check Alcotest.int "one step" 1 (Replayer.stats rep).Transition.steps

let test_packed_replayer_profile () =
  (* mirror of test_core's replayer profile test, on the packed engine *)
  let auto = Builder.build [ t1 ] in
  let rep = Replayer.create_packed (Packed.freeze auto) in
  let addrs = [| 0x100; 0x200; 0x300; 0x100; 0x200; 0x300; 0x999 |] in
  Replayer.feed_run rep ~insns:(Array.make 7 1) addrs ~len:7;
  check Alcotest.int "covered" 6 (Replayer.covered_insns rep);
  check Alcotest.int "total" 7 (Replayer.total_insns rep);
  check Alcotest.int "one enter" 1 (Replayer.trace_enters rep);
  check Alcotest.int "one exit" 1 (Replayer.trace_exits rep);
  check Alcotest.(list (pair int int)) "per-tbb counts"
    [ (0, 2); (1, 2); (2, 2) ]
    (Replayer.trace_profile rep 0)

let test_transition_accessor_raises () =
  let rep = Replayer.create_packed (Packed.freeze (Builder.build [ t1 ])) in
  Alcotest.check_raises "no reference engine"
    (Invalid_argument "Replayer.transition: packed engine") (fun () ->
      ignore (Replayer.transition rep))

let test_pc_trace_replay_packed () =
  (* capture a real execution once; offline packed replay must match the
     offline reference replay on every observable *)
  let img = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let auto = Builder.build traces in
  let path = Filename.temp_file "tea_pk" ".trc" in
  let n = Tea_pinsim.Trace_capture.record img path in
  check Alcotest.bool "captured blocks" true (n > 1000);
  let reference =
    Pc_trace.replay (Transition.create Transition.config_global_local auto) path
  in
  let packed = Pc_trace.replay_packed (Packed.freeze auto) path in
  Sys.remove path;
  check (Alcotest.float 0.0) "coverage" (Replayer.coverage reference)
    (Replayer.coverage packed);
  check Alcotest.int "enters" (Replayer.trace_enters reference)
    (Replayer.trace_enters packed);
  check Alcotest.int "exits" (Replayer.trace_exits reference)
    (Replayer.trace_exits packed);
  check Alcotest.(list (pair int int)) "profiles"
    (Replayer.tbb_counts reference) (Replayer.tbb_counts packed);
  check Alcotest.int "steps" (Replayer.stats reference).Transition.steps
    (Replayer.stats packed).Transition.steps

(* ---------------- Serialization ---------------- *)

let test_packed_binary_header () =
  let p = Packed.freeze (Builder.build [ t1; t2 ]) in
  let bin = Serialize.packed_to_binary p in
  check Alcotest.string "magic" "TEAPK1" (String.sub bin 0 6);
  let p' = Serialize.packed_of_binary bin in
  check Alcotest.bool "no automaton behind a loaded image" true
    (Packed.automaton p' = None);
  check Alcotest.bool "frozen image keeps its automaton" true
    (Packed.automaton p <> None)

let test_packed_binary_rejects_garbage () =
  let reject s =
    try
      ignore (Serialize.packed_of_binary s);
      Alcotest.failf "accepted %S" s
    with Serialize.Parse_error _ -> ()
  in
  reject "";
  reject "garbage";
  reject "TEAPK1";
  (* truncated: valid magic, then a length with no payload *)
  reject "TEAPK1\xff\xff\xff\x7f";
  (* trailing bytes after a valid image *)
  let good = Serialize.packed_to_binary (Packed.freeze (Builder.build [ t1 ])) in
  reject (good ^ "\x00")

let test_of_raw_validation () =
  let p = Packed.freeze (Builder.build [ t1; t2 ]) in
  let r = Packed.to_raw p in
  let expect_invalid name mutate =
    let copy =
      {
        Packed.offsets = Array.copy r.Packed.offsets;
        labels = Array.copy r.Packed.labels;
        targets = Array.copy r.Packed.targets;
        state_trace = Array.copy r.Packed.state_trace;
        state_tbb = Array.copy r.Packed.state_tbb;
        state_start = Array.copy r.Packed.state_start;
        state_insns = Array.copy r.Packed.state_insns;
        hash_keys = Array.copy r.Packed.hash_keys;
        hash_vals = Array.copy r.Packed.hash_vals;
        hot_len = Array.copy r.Packed.hot_len;
        orig_of = Array.copy r.Packed.orig_of;
      }
    in
    mutate copy;
    try
      ignore (Packed.of_raw copy);
      Alcotest.failf "of_raw accepted %s" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "target out of range" (fun c -> c.Packed.targets.(0) <- 9999);
  expect_invalid "non-monotone offsets" (fun c ->
      c.Packed.offsets.(1) <- c.Packed.offsets.(Array.length c.Packed.offsets - 1) + 1);
  expect_invalid "hash value out of range" (fun c ->
      Array.iteri
        (fun i k -> if k >= 0 then c.Packed.hash_vals.(i) <- 9999)
        c.Packed.hash_keys);
  (* the untouched raw image is accepted *)
  let reloaded = Packed.of_raw r in
  check Alcotest.int "roundtrip states" (Packed.n_states p)
    (Packed.n_states reloaded)

let test_save_load_packed_file () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let auto = Builder.of_set dbt.Tea_dbt.Stardbt.set in
  let p = Packed.freeze auto in
  let path = Filename.temp_file "tea_pk" ".pki" in
  Serialize.save_packed path p;
  let loaded = Serialize.load_packed path in
  Sys.remove path;
  check Alcotest.int "states" (Packed.n_states p) (Packed.n_states loaded);
  check Alcotest.int "edges" (Packed.n_edges p) (Packed.n_edges loaded);
  check Alcotest.int "heads" (Packed.n_heads p) (Packed.n_heads loaded)

(* ---------------- Table 4 engine column (end to end) ---------------- *)

let test_overhead_ordering_with_packed () =
  let p = Option.get (Tea_workloads.Spec2000.by_name "168.wupwise") in
  let img = Tea_workloads.Spec2000.image p in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy img in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let row = Tea_pinsim.Overhead.measure ~traces img in
  let open Tea_pinsim.Overhead in
  (* the paper's §4.2 ordering between the reference configurations... *)
  check Alcotest.bool "Empty >= Global/Local" true (row.empty >= row.global_local);
  check Alcotest.bool "Global/Local fastest reference config" true
    (row.global_local <= row.global_no_local
    && row.global_local <= row.no_global_local);
  (* ...and the packed engine beats the best reference configuration *)
  check Alcotest.bool "Packed <= Global/Local" true (row.packed <= row.global_local);
  check Alcotest.bool "Packed still slower than bare Pin" true
    (row.packed >= row.without_pintool)

let () =
  Alcotest.run "tea_packed"
    [
      ( "differential",
        [
          qtest prop_packed_equals_reference;
          qtest prop_serialized_packed_equals_fresh;
          qtest prop_feed_run_equals_feed_addr;
        ] );
      ( "freeze",
        [
          Alcotest.test_case "shape" `Quick test_freeze_shape;
          Alcotest.test_case "step fixture" `Quick test_step_matches_reference_fixture;
          Alcotest.test_case "stale check" `Quick test_stale_after_mutation;
          Alcotest.test_case "bad state" `Quick test_step_bad_state;
          Alcotest.test_case "empty automaton" `Quick test_empty_automaton;
          Alcotest.test_case "state insns" `Quick test_state_insns;
        ] );
      ( "replayer",
        [
          Alcotest.test_case "feed_run validation" `Quick test_feed_run_validation;
          Alcotest.test_case "packed profile" `Quick test_packed_replayer_profile;
          Alcotest.test_case "transition accessor" `Quick test_transition_accessor_raises;
          Alcotest.test_case "pc-trace packed replay" `Quick test_pc_trace_replay_packed;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "binary header" `Quick test_packed_binary_header;
          Alcotest.test_case "rejects garbage" `Quick test_packed_binary_rejects_garbage;
          Alcotest.test_case "of_raw validation" `Quick test_of_raw_validation;
          Alcotest.test_case "save/load file" `Quick test_save_load_packed_file;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "table4 ordering incl. packed" `Slow
            test_overhead_ordering_with_packed;
        ] );
    ]
