(* The parallel replay driver: the Domain pool, the mergeable Profile
   algebra, and the sharded PC-trace replay with entry-state stitching.
   The headline property is exactness — a sharded parallel replay must
   merge to the bit-identical profile of the sequential run (per-state
   counts, coverage, enter/exit counters, stats and simulated cycles) for
   any workload and any domain count. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Pc_trace = Tea_core.Pc_trace
module Pool = Tea_parallel.Pool
module Profile = Tea_parallel.Profile
module Shard = Tea_parallel.Shard

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* Fixtures shared with test_core/test_packed: T1 cycles
   0x100->0x200->0x300->0x100, T2 chains 0x400->0x300. *)
let t1 =
  Trace.linear ~id:0 ~kind:"test" ~cycle:true
    [ block_at 0x100; block_at 0x200; block_at 0x300 ]

let t2 = Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ]

let fixture_packed () = Packed.freeze (Builder.build [ t1; t2 ])

(* A looping stream over the fixture: in-trace runs, cross-trace hops and
   cold blocks (0x999 is in no trace — a sync point in every lap). *)
let fixture_stream n =
  let lap = [ 0x100; 0x200; 0x300; 0x100; 0x999; 0x400; 0x300; 0x555 ] in
  Array.init n (fun i -> List.nth lap (i mod List.length lap))

(* ---------------- Pool ---------------- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let r = Pool.map pool ~f:(fun i -> i * i) 100 in
      check (Alcotest.array Alcotest.int) "squares in index order"
        (Array.init 100 (fun i -> i * i))
        r;
      let tasks =
        List.fold_left (fun a d -> a + d.Pool.d_tasks) 0 (Pool.domain_stats pool)
      in
      check Alcotest.int "every task ran exactly once" 100 tasks)

let test_pool_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check Alcotest.int "jobs" 1 (Pool.jobs pool);
      let r = Pool.map pool ~f:(fun i -> i + 1) 5 in
      check (Alcotest.array Alcotest.int) "inline results" [| 1; 2; 3; 4; 5 |] r;
      match Pool.domain_stats pool with
      | [ d ] -> check Alcotest.int "inline tasks counted" 5 d.Pool.d_tasks
      | ds -> Alcotest.failf "expected 1 stat entry, got %d" (List.length ds))

let test_pool_map_list () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check (Alcotest.list Alcotest.string) "order preserved"
        [ "a!"; "b!"; "c!" ]
        (Pool.map_list pool (fun s -> s ^ "!") [ "a"; "b"; "c" ]))

let test_pool_exception () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises "task exception reaches the caller"
            (Failure "boom")
            (fun () ->
              ignore
                (Pool.map pool
                   ~f:(fun i -> if i = 5 then failwith "boom" else i)
                   10));
          (* the pool survives a failed map *)
          let r = Pool.map pool ~f:(fun i -> i) 4 in
          check (Alcotest.array Alcotest.int) "reusable after failure"
            [| 0; 1; 2; 3 |] r))
    [ 1; 2 ]

let test_pool_add_units () =
  Pool.with_pool ~jobs:2 (fun pool ->
      ignore
        (Pool.map pool
           ~f:(fun i ->
             Pool.add_units pool (i + 1);
             i)
           10);
      (* from outside any worker: lands on the residual counter *)
      Pool.add_units pool 7;
      let worker_units =
        List.fold_left (fun a d -> a + d.Pool.d_units) 0 (Pool.domain_stats pool)
      in
      check Alcotest.int "task units all credited" 55 worker_units;
      check Alcotest.int "driver units on the residual" 7
        (Pool.residual_units pool))

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:2 in
  ignore (Pool.map pool ~f:(fun i -> i) 3);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool ~f:(fun i -> i) 1));
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

(* Pool lifecycle hardening: several driver domains mapping on one pool
   at once (each map owns a private batch counter), and shutdown racing
   shutdown (exactly one caller joins the workers). *)
let test_pool_concurrent_drivers () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let driver d () =
            for round = 1 to 25 do
              let r = Pool.map pool ~f:(fun i -> (d * 1000) + (round * i)) 20 in
              let expect = Array.init 20 (fun i -> (d * 1000) + (round * i)) in
              if r <> expect then
                Alcotest.failf "driver %d round %d: wrong batch results" d round
            done
          in
          let ds = List.init 3 (fun d -> Domain.spawn (driver (d + 1))) in
          driver 0 ();
          List.iter Domain.join ds))
    [ 1; 2 ]

let test_pool_concurrent_shutdown () =
  let pool = Pool.create ~jobs:2 in
  ignore (Pool.map pool ~f:(fun i -> i) 8);
  let ds = List.init 4 (fun _ -> Domain.spawn (fun () -> Pool.shutdown pool)) in
  Pool.shutdown pool;
  List.iter Domain.join ds;
  Alcotest.check_raises "map after concurrent shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool ~f:(fun i -> i) 1))

(* ---------------- Profile ---------------- *)

let profile_of_run stream =
  let rep = Replayer.create_packed (fixture_packed ()) in
  Array.iter (fun a -> Replayer.feed_addr rep ~insns:1 a) stream;
  (Profile.of_replayer rep, rep)

let profile = Alcotest.testable Profile.pp Profile.equal

let test_profile_of_replayer () =
  let p, rep = profile_of_run (fixture_stream 40) in
  check Alcotest.int "covered" (Replayer.covered_insns rep) p.Profile.covered;
  check Alcotest.int "total" (Replayer.total_insns rep) p.Profile.total;
  check Alcotest.int "enters" (Replayer.trace_enters rep) p.Profile.enters;
  check Alcotest.int "exits" (Replayer.trace_exits rep) p.Profile.exits;
  check Alcotest.int "cycles" (Replayer.cycles rep) p.Profile.cycles;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "counts" (Replayer.tbb_counts rep) p.Profile.counts;
  check Alcotest.int "steps" (Replayer.stats rep).Tea_core.Transition.steps
    p.Profile.steps

let test_profile_merge_identity () =
  let p, _ = profile_of_run (fixture_stream 33) in
  check profile "left identity" p (Profile.merge Profile.empty p);
  check profile "right identity" p (Profile.merge p Profile.empty);
  check profile "merge_all" p (Profile.merge_all [ Profile.empty; p ])

let test_profile_merge_assoc_comm () =
  let a, _ = profile_of_run (fixture_stream 17) in
  let b, _ = profile_of_run (fixture_stream 40) in
  let c, _ = profile_of_run (Array.map (fun x -> x + 0x10) (fixture_stream 9)) in
  check profile "commutative" (Profile.merge a b) (Profile.merge b a);
  check profile "associative"
    (Profile.merge (Profile.merge a b) c)
    (Profile.merge a (Profile.merge b c));
  let m = Profile.merge a b in
  check (Alcotest.float 1e-9) "coverage"
    (float_of_int m.Profile.covered /. float_of_int m.Profile.total)
    (Profile.coverage m)

(* Splitting one replay at an arbitrary point and stitching with
   [set_state] must merge back to the whole-run profile — the single-seam
   version of what the sharded driver does at every chunk boundary. *)
let test_profile_split_merge () =
  let stream = fixture_stream 50 in
  let whole, _ = profile_of_run stream in
  List.iter
    (fun k ->
      let rep_a = Replayer.create_packed (fixture_packed ()) in
      Array.iteri
        (fun i a -> if i < k then Replayer.feed_addr rep_a ~insns:1 a)
        stream;
      let rep_b = Replayer.create_packed (fixture_packed ()) in
      Replayer.set_state rep_b (Replayer.state rep_a);
      Array.iteri
        (fun i a -> if i >= k then Replayer.feed_addr rep_b ~insns:1 a)
        stream;
      check profile
        (Printf.sprintf "split at %d == whole" k)
        whole
        (Profile.merge (Profile.of_replayer rep_a) (Profile.of_replayer rep_b)))
    [ 0; 1; 13; 25; 49; 50 ]

(* ---------------- Random workloads (same shape as test_packed) -------- *)

let pool_size = 16

let pool_addr i = 0x1000 + (0x10 * (i mod (pool_size + 4)))

let gen_trace id rand =
  let open QCheck.Gen in
  let n = int_range 1 6 rand in
  let idxs = Array.init n (fun _ -> int_range 0 (pool_size - 1) rand) in
  let blocks = Array.map (fun i -> block_at (pool_addr i)) idxs in
  let succs =
    Array.init n (fun _ ->
        let k = int_range 0 3 rand in
        let chosen = List.init k (fun _ -> int_range 0 (n - 1) rand) in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun j ->
            let label = pool_addr idxs.(j) in
            if Hashtbl.mem seen label then false
            else begin
              Hashtbl.add seen label ();
              true
            end)
          chosen)
  in
  Trace.make ~id ~kind:"gen" blocks succs

type workload = { w_traces : Trace.t list; w_stream : (int * int) list }

let gen_workload =
  let open QCheck.Gen in
  let gen rand =
    let n_traces = int_range 1 5 rand in
    let w_traces = List.init n_traces (fun id -> gen_trace id rand) in
    let n_steps = int_range 0 400 rand in
    let w_stream =
      List.init n_steps (fun _ ->
          (pool_addr (int_range 0 (pool_size + 3) rand), int_range 0 4 rand))
    in
    { w_traces; w_stream }
  in
  QCheck.make
    ~print:(fun w ->
      Printf.sprintf "traces=%d stream=%d"
        (List.length w.w_traces) (List.length w.w_stream))
    gen

let sequential_profile packed ~starts ~insns ~len =
  let rep = Replayer.create_packed (Packed.dup packed) in
  Replayer.feed_run rep ~insns starts ~len;
  Profile.of_replayer rep

(* The tentpole property: sharded replay == sequential replay, exactly,
   for 1, 2 and 4 domains — whatever the automaton and stream. *)
let prop_shard_equals_sequential =
  QCheck.Test.make ~name:"sharded parallel replay == sequential (jobs 1/2/4)"
    ~count:60 gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      if Automaton.check_deterministic auto <> Ok () then
        QCheck.Test.fail_report "generated automaton not deterministic";
      let packed = Packed.freeze auto in
      let starts = Array.of_list (List.map fst w.w_stream) in
      let insns = Array.of_list (List.map snd w.w_stream) in
      let len = Array.length starts in
      let seq = sequential_profile packed ~starts ~insns ~len in
      List.for_all
        (fun jobs ->
          let par =
            Pool.with_pool ~jobs (fun pool ->
                Shard.replay_arrays pool packed ~insns starts ~len)
          in
          if Profile.equal seq par then true
          else
            QCheck.Test.fail_reportf "jobs=%d: %a <> %a" jobs Profile.pp par
              Profile.pp seq)
        [ 1; 2; 4 ])

let test_shard_fixture () =
  let packed = fixture_packed () in
  let starts = fixture_stream 1000 in
  let insns = Array.make 1000 1 in
  let seq = sequential_profile packed ~starts ~insns ~len:1000 in
  Pool.with_pool ~jobs:4 (fun pool ->
      let par = Shard.replay_arrays pool packed ~insns starts ~len:1000 in
      check profile "4-way shard == sequential" seq par;
      let units =
        Pool.residual_units pool
        + List.fold_left (fun a d -> a + d.Pool.d_units) 0
            (Pool.domain_stats pool)
      in
      check Alcotest.int "every block credited exactly once" 1000 units)

let test_shard_validation () =
  let packed = fixture_packed () in
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "len out of range"
        (Invalid_argument "Shard.replay_arrays: len out of range") (fun () ->
          ignore (Shard.replay_arrays pool packed [| 0x100 |] ~len:2));
      Alcotest.check_raises "short insns"
        (Invalid_argument "Shard.replay_arrays: insns array shorter than len")
        (fun () ->
          ignore
            (Shard.replay_arrays pool packed ~insns:[||] [| 0x100 |] ~len:1));
      (* empty stream: trivially equal to sequential *)
      check profile "empty stream" Profile.empty
        (Shard.replay_arrays pool packed [||] ~len:0))

let test_shard_pc_trace () =
  let path = Filename.temp_file "tea_test_parallel" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Pc_trace.open_writer path in
      let starts = fixture_stream 700 in
      Array.iter (fun a -> Pc_trace.write w ~start:a ~insns:2) starts;
      Pc_trace.close_writer w;
      let packed = fixture_packed () in
      let seq =
        Profile.of_replayer (Pc_trace.replay_packed (Packed.dup packed) path)
      in
      Pool.with_pool ~jobs:3 (fun pool ->
          let par, blocks = Shard.replay_pc_trace pool packed path in
          check Alcotest.int "block count" 700 blocks;
          check profile "pc-trace shard == replay_packed" seq par))

(* ---------------- Replayer satellites ---------------- *)

(* feed_run ~off replays exactly the sub-array, for both engines. *)
let test_feed_run_off () =
  let stream = fixture_stream 60 in
  let insns = Array.map (fun _ -> 1) stream in
  let with_off =
    let rep = Replayer.create_packed (fixture_packed ()) in
    Replayer.feed_run rep ~off:20 ~insns stream ~len:30;
    Profile.of_replayer rep
  in
  let with_sub =
    let rep = Replayer.create_packed (fixture_packed ()) in
    Replayer.feed_run rep
      ~insns:(Array.sub insns 20 30)
      (Array.sub stream 20 30) ~len:30;
    Profile.of_replayer rep
  in
  check profile "packed: off == sub-array copy" with_sub with_off;
  let reference off =
    let auto = Builder.build [ t1; t2 ] in
    let rep =
      Replayer.create
        (Tea_core.Transition.create Tea_core.Transition.config_global_local auto)
    in
    if off then Replayer.feed_run rep ~off:20 ~insns stream ~len:30
    else
      Replayer.feed_run rep
        ~insns:(Array.sub insns 20 30)
        (Array.sub stream 20 30) ~len:30;
    Profile.of_replayer rep
  in
  check profile "reference: off == sub-array copy" (reference false)
    (reference true);
  let rep = Replayer.create_packed (fixture_packed ()) in
  Alcotest.check_raises "off+len out of range"
    (Invalid_argument "Replayer.feed_run: len out of range") (fun () ->
      Replayer.feed_run rep ~off:40 stream ~len:30);
  Alcotest.check_raises "negative off"
    (Invalid_argument "Replayer.feed_run: len out of range") (fun () ->
      Replayer.feed_run rep ~off:(-1) stream ~len:1)

(* The cached no-insns scratch must behave like an explicit zero array,
   across repeated batches of different sizes (regrowth included). *)
let test_feed_run_no_insns_scratch () =
  let a =
    let rep = Replayer.create_packed (fixture_packed ()) in
    Replayer.feed_run rep (fixture_stream 10) ~len:10;
    Replayer.feed_run rep (fixture_stream 300) ~len:300;
    Replayer.feed_run rep ~off:5 (fixture_stream 40) ~len:35;
    Profile.of_replayer rep
  in
  let b =
    let rep = Replayer.create_packed (fixture_packed ()) in
    Replayer.feed_run rep ~insns:(Array.make 10 0) (fixture_stream 10) ~len:10;
    Replayer.feed_run rep ~insns:(Array.make 300 0) (fixture_stream 300)
      ~len:300;
    Replayer.feed_run rep ~off:5 ~insns:(Array.make 40 0) (fixture_stream 40)
      ~len:35;
    Profile.of_replayer rep
  in
  check profile "no-insns batches == explicit zero arrays" b a;
  check Alcotest.int "no coverage accrued" 0 a.Profile.covered

let test_set_state_validation () =
  let rep = Replayer.create_packed (fixture_packed ()) in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Replayer.set_state: negative state id") (fun () ->
      Replayer.set_state rep (-1));
  Replayer.set_state rep 9999;
  (* the batch loop attributes the range check to itself, not Packed.step *)
  Alcotest.check_raises "stale state caught at next batch"
    (Invalid_argument "Replayer.feed_run: state id outside the frozen image")
    (fun () -> Replayer.feed_run rep [| 0x100 |] ~len:1)

(* Packed.hash_pc is the one hash definition: every occupied slot of a
   frozen image's head table must be reachable by linear probing from its
   hash_pc home slot (no hole in between), and head_of must agree. *)
let test_hash_pc_exported () =
  let packed = fixture_packed () in
  let raw = Packed.to_raw packed in
  let keys = raw.Packed.hash_keys and vals = raw.Packed.hash_vals in
  let mask = Array.length keys - 1 in
  Array.iteri
    (fun _ key ->
      if key >= 0 then begin
        let rec find i steps =
          if steps > mask then Alcotest.failf "0x%x unreachable from home" key
          else if keys.(i) = key then i
          else if keys.(i) < 0 then
            Alcotest.failf "probe chain for 0x%x hits a hole" key
          else find ((i + 1) land mask) (steps + 1)
        in
        let slot = find (Packed.hash_pc mask key) 0 in
        check (Alcotest.option Alcotest.int)
          (Printf.sprintf "head_of 0x%x" key)
          (Some vals.(slot))
          (Packed.head_of packed key)
      end)
    keys

(* Regression: --jobs 0 / negatives used to be accepted by the CLI and
   silently fall through to the sequential path; parse_jobs is the single
   validation point and must reject everything create would reject. *)
let test_pool_parse_jobs () =
  let ok s n =
    match Pool.parse_jobs s with
    | Ok got -> check Alcotest.int s n got
    | Error msg -> Alcotest.failf "parse_jobs %S rejected: %s" s msg
  in
  let rejected s =
    match Pool.parse_jobs s with
    | Ok n -> Alcotest.failf "parse_jobs %S accepted as %d" s n
    | Error msg ->
        check Alcotest.bool (s ^ " has a reason") true (String.length msg > 0)
  in
  ok "1" 1;
  ok "8" 8;
  ok " 4 " 4;
  List.iter rejected [ "0"; "-1"; "-42"; ""; "two"; "1.5"; "1x" ]

let () =
  Alcotest.run "tea_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order and values" `Quick test_pool_map_order;
          Alcotest.test_case "parse_jobs" `Quick test_pool_parse_jobs;
          Alcotest.test_case "inline jobs=1" `Quick test_pool_inline;
          Alcotest.test_case "map_list" `Quick test_pool_map_list;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "add_units accounting" `Quick test_pool_add_units;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "concurrent drivers" `Quick
            test_pool_concurrent_drivers;
          Alcotest.test_case "concurrent shutdown" `Quick
            test_pool_concurrent_shutdown;
        ] );
      ( "profile",
        [
          Alcotest.test_case "of_replayer" `Quick test_profile_of_replayer;
          Alcotest.test_case "merge identity" `Quick test_profile_merge_identity;
          Alcotest.test_case "merge assoc/comm" `Quick
            test_profile_merge_assoc_comm;
          Alcotest.test_case "split+merge == whole" `Quick
            test_profile_split_merge;
        ] );
      ( "shard",
        [
          qtest prop_shard_equals_sequential;
          Alcotest.test_case "fixture 4-way" `Quick test_shard_fixture;
          Alcotest.test_case "validation" `Quick test_shard_validation;
          Alcotest.test_case "pc-trace file" `Quick test_shard_pc_trace;
        ] );
      ( "replayer",
        [
          Alcotest.test_case "feed_run off" `Quick test_feed_run_off;
          Alcotest.test_case "no-insns scratch" `Quick
            test_feed_run_no_insns_scratch;
          Alcotest.test_case "set_state validation" `Quick
            test_set_state_validation;
          Alcotest.test_case "hash_pc exported" `Quick test_hash_pc_exported;
        ] );
    ]
