(* Tests of the profile-guided repacking pass (Tea_opt.Repack) and the
   repacked packed-image flavor it produces: repacking must be a pure
   permutation (identical replay observables through the id translation,
   cycles changed only per the documented scan-cost model and never upward
   on the profiling stream), the inline cache must be cost-neutral, the
   TEAPK2 serialization must round-trip, and sharded replay over a
   repacked image must merge to the sequential profile counter for
   counter. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Serialize = Tea_core.Serialize
module Repack = Tea_opt.Repack
module Metrics = Tea_telemetry.Metrics
module Probe = Tea_telemetry.Probe

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* ---------------- Random workload generation ----------------

   Same shape as test_packed's generator: a pool of block addresses,
   traces whose states have up to 3 in-trace successors (so spans are
   long enough for prefix-vs-tail layout decisions to matter), and
   streams that also draw from addresses no trace contains. *)

let pool_size = 16

let pool i = 0x1000 + (0x10 * (i mod (pool_size + 4)))

let gen_trace id rand =
  let open QCheck.Gen in
  let n = int_range 1 6 rand in
  let idxs = Array.init n (fun _ -> int_range 0 (pool_size - 1) rand) in
  let blocks = Array.map (fun i -> block_at (pool i)) idxs in
  let succs =
    Array.init n (fun _ ->
        let k = int_range 0 3 rand in
        let chosen = List.init k (fun _ -> int_range 0 (n - 1) rand) in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun j ->
            let label = pool idxs.(j) in
            if Hashtbl.mem seen label then false
            else begin
              Hashtbl.add seen label ();
              true
            end)
          chosen)
  in
  Trace.make ~id ~kind:"gen" blocks succs

type workload = {
  w_traces : Trace.t list;
  w_stream : (int * int) list; (* (address, insns) *)
}

let gen_workload =
  let open QCheck.Gen in
  let gen rand =
    let n_traces = int_range 1 5 rand in
    let w_traces = List.init n_traces (fun id -> gen_trace id rand) in
    let n_steps = int_range 0 200 rand in
    let w_stream =
      List.init n_steps (fun _ ->
          (pool (int_range 0 (pool_size + 3) rand), int_range 0 4 rand))
    in
    { w_traces; w_stream }
  in
  QCheck.make
    ~print:(fun w ->
      Printf.sprintf "traces=%d stream=%d" (List.length w.w_traces)
        (List.length w.w_stream))
    gen

let arrays_of_stream stream =
  ( Array.of_list (List.map fst stream),
    Array.of_list (List.map snd stream),
    List.length stream )

(* Replay observables, with engine-space state ids translated back to
   original automaton ids so flat and repacked runs are comparable. *)
type observation = {
  o_states : Automaton.state list;
  o_covered : int;
  o_total : int;
  o_enters : int;
  o_exits : int;
  o_counts : (Automaton.state * int) list;
  o_stats : int * int * int * int;
}

let observe img stream =
  let rep = Replayer.create_packed img in
  let states =
    List.map
      (fun (addr, insns) ->
        Replayer.feed_addr rep ~insns addr;
        Packed.orig_state img (Replayer.state rep))
      stream
  in
  let st = Replayer.stats rep in
  ( {
      o_states = states;
      o_covered = Replayer.covered_insns rep;
      o_total = Replayer.total_insns rep;
      o_enters = Replayer.trace_enters rep;
      o_exits = Replayer.trace_exits rep;
      o_counts = Replayer.tbb_counts rep;
      o_stats =
        ( st.Tea_core.Transition.steps,
          st.Tea_core.Transition.in_trace_hits,
          st.Tea_core.Transition.global_hits,
          st.Tea_core.Transition.global_misses );
    },
    Replayer.cycles rep )

(* The tentpole property: for any automaton and any profile — empty,
   collected on the replayed stream, or collected on a different
   (mismatched) stream — repacking changes no replay observable. Cycles
   are equal under the empty profile (identity layout, cost-neutral IC)
   and never larger under the matching profile (the per-span argmin keeps
   the source layout as a candidate); a mismatched profile may cost more,
   by design. *)
let prop_repack_pure_permutation =
  QCheck.Test.make ~name:"repack is a pure permutation" ~count:200
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, _, len = arrays_of_stream w.w_stream in
      let flat_obs, flat_cycles = observe flat w.w_stream in
      let collected = Repack.collect flat addrs ~len in
      let mismatched =
        let rev = Array.of_list (List.rev_map fst w.w_stream) in
        Repack.collect flat rev ~len
      in
      List.for_all
        (fun (prof, cycle_check) ->
          let tuned = Repack.repack flat prof in
          let obs, cycles = observe tuned w.w_stream in
          Packed.is_repacked tuned
          && obs = flat_obs
          && cycle_check cycles
          (* the permutation is invertible *)
          && (let ok = ref true in
              for s = 0 to Packed.n_slots tuned - 1 do
                if Packed.slot_of_state tuned (Packed.orig_state tuned s) <> s
                then ok := false
              done;
              !ok)
          (* every step hit or missed the inline cache, exactly once *)
          && Packed.ic_hits tuned + Packed.ic_misses tuned = len)
        [
          (Repack.empty_profile flat, fun c -> c = flat_cycles);
          (collected, fun c -> c <= flat_cycles);
          (mismatched, fun _ -> true);
        ])

(* Batched feed_run on a repacked image must stay exactly len feed_addr
   calls — the fused run_packed_hot loop replicates the IC/prefix/tail
   step inline, and this property pins the replication. *)
let prop_feed_run_equals_feed_addr =
  QCheck.Test.make ~name:"repacked feed_run == repeated feed_addr"
    ~count:100 gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let prof = Repack.collect flat addrs ~len in
      let tuned = Repack.repack flat prof in
      let img1 = Packed.dup tuned in
      let one = Replayer.create_packed img1 in
      List.iter
        (fun (addr, ins) -> Replayer.feed_addr one ~insns:ins addr)
        w.w_stream;
      let img2 = Packed.dup tuned in
      let batched = Replayer.create_packed img2 in
      Replayer.feed_run batched ~insns addrs ~len;
      let s1 = Replayer.stats one and s2 = Replayer.stats batched in
      Replayer.state one = Replayer.state batched
      && Replayer.coverage one = Replayer.coverage batched
      && Replayer.tbb_counts one = Replayer.tbb_counts batched
      && s1 = s2
      && Replayer.cycles one = Replayer.cycles batched
      && Packed.ic_hits img2 = Packed.ic_hits img1
      && Packed.ic_misses img2 = Packed.ic_misses img1)

(* Profiles of disjoint chunks merge into the whole-stream profile when
   the later chunk is collected from the state the walk carried in. *)
let prop_collect_merges =
  QCheck.Test.make ~name:"collect(whole) == merge(collect chunks)"
    ~count:100
    (QCheck.pair gen_workload (QCheck.int_range 0 200))
    (fun (w, cut) ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, _, len = arrays_of_stream w.w_stream in
      let cut = min cut len in
      let whole = Repack.collect flat addrs ~len in
      let first = Repack.collect flat addrs ~len:cut in
      let mid =
        let rep = Replayer.create_packed (Packed.dup flat) in
        Replayer.feed_run rep addrs ~len:cut;
        Replayer.state rep
      in
      let second =
        Repack.collect ~state:mid flat ~off:cut addrs ~len:(len - cut)
      in
      Repack.merge first second = whole)

(* Round-tripping a repacked image through TEAPK2 bytes preserves replay
   behaviour, layout metadata and the repacked flavor. *)
let prop_teapk2_roundtrip =
  QCheck.Test.make ~name:"TEAPK2 round-trip replays identically" ~count:100
    gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, _, len = arrays_of_stream w.w_stream in
      let tuned = Repack.repack flat (Repack.collect flat addrs ~len) in
      let bin = Serialize.packed_to_binary tuned in
      let loaded = Serialize.packed_of_binary bin in
      let a, ca = observe tuned w.w_stream in
      let b, cb = observe loaded w.w_stream in
      String.sub bin 0 6 = "TEAPK2"
      && Packed.is_repacked loaded
      && a = b && ca = cb
      && Packed.hot_edges loaded = Packed.hot_edges tuned
      && Repack.moved_states loaded = Repack.moved_states tuned)

(* ---------------- sharded replay over a repacked image ----------------

   The satellite acceptance bar: --jobs 4 merges to --jobs 1, profile and
   probe counter for counter. The one documented exception is the
   ic_hit/ic_miss split: each shard worker steps a dup sibling whose
   inline cache starts cold, so the split is chunk-local — but every step
   is exactly one of the two, so the sum is invariant. *)

let ic_counter = function
  | "packed.ic_hit" | "packed.ic_miss" -> true
  | _ -> false

let counter snap name =
  Option.value ~default:0 (Metrics.find_counter snap name)

let ic_sum snap = counter snap "packed.ic_hit" + counter snap "packed.ic_miss"

let snapshots_equal_mod_ic s1 s4 =
  List.filter (fun (n, _) -> not (ic_counter n)) s1.Metrics.s_counters
  = List.filter (fun (n, _) -> not (ic_counter n)) s4.Metrics.s_counters
  && s1.Metrics.s_histograms = s4.Metrics.s_histograms
  && ic_sum s1 = ic_sum s4

let sharded_snapshot img ~insns addrs ~len jobs =
  Probe.install ();
  Fun.protect
    ~finally:(fun () -> if Probe.enabled () then ignore (Probe.uninstall ()))
    (fun () ->
      let profile =
        Tea_parallel.Pool.with_pool ~jobs (fun pool ->
            Tea_parallel.Shard.replay_arrays pool img ~insns addrs ~len)
      in
      (profile, Probe.uninstall ()))

let prop_sharded_repacked_replay =
  QCheck.Test.make ~name:"repacked replay: jobs 4 merges to jobs 1"
    ~count:20 gen_workload (fun w ->
      let auto = Builder.build w.w_traces in
      let flat = Packed.freeze auto in
      let addrs, insns, len = arrays_of_stream w.w_stream in
      let tuned = Repack.repack flat (Repack.collect flat addrs ~len) in
      let p1, s1 = sharded_snapshot tuned ~insns addrs ~len 1 in
      let p4, s4 = sharded_snapshot tuned ~insns addrs ~len 4 in
      Tea_parallel.Profile.equal p1 p4 && snapshots_equal_mod_ic s1 s4)

(* ---------------- layout unit tests ---------------- *)

(* A trace whose head has three successors, so one state carries a span
   of three edges: head -> {0x2000 (hot), 0x3000, 0x4000}. *)
let fan_trace =
  Trace.make ~id:0 ~kind:"fix"
    [| block_at 0x1000; block_at 0x2000; block_at 0x3000; block_at 0x4000 |]
    [| [ 1; 2; 3 ]; [ 0 ]; [ 0 ]; [ 0 ] |]

let test_hot_prefix_ordering () =
  let auto = Builder.build [ fan_trace ] in
  let flat = Packed.freeze auto in
  (* drive the hot edge 8x, the others once each *)
  let stream =
    [ 0x1000 ]
    @ List.concat (List.init 8 (fun _ -> [ 0x2000; 0x1000 ]))
    @ [ 0x3000; 0x1000; 0x4000; 0x1000 ]
  in
  let addrs = Array.of_list stream in
  let len = Array.length addrs in
  let prof = Repack.collect flat addrs ~len in
  let tuned = Repack.repack flat prof in
  let raw = Packed.to_raw tuned in
  (* the fan state is the hottest body state, so it lands in slot 1 *)
  let s = 1 in
  let lo = raw.Packed.offsets.(s) and hi = raw.Packed.offsets.(s + 1) in
  check Alcotest.int "span of three" 3 (hi - lo);
  check Alcotest.bool "hot prefix chosen" true (raw.Packed.hot_len.(s) >= 1);
  check Alcotest.int "most-taken edge first" 0x2000 raw.Packed.labels.(lo);
  (* the tail stays sorted for the binary search *)
  let k = raw.Packed.hot_len.(s) in
  for i = lo + k to hi - 2 do
    check Alcotest.bool "tail sorted" true
      (raw.Packed.labels.(i) < raw.Packed.labels.(i + 1))
  done;
  check Alcotest.bool "hot edges counted" true (Packed.hot_edges tuned >= 1);
  (* replays of the driving stream agree, and the tuned layout is
     strictly cheaper in simulated cycles (span 3 searched every step
     before, one linear probe on the hot path now) *)
  let stream2 = List.map (fun a -> (a, 1)) stream in
  let fo, fc = observe flat stream2 and t_o, tc = observe tuned stream2 in
  check Alcotest.bool "observables equal" true (fo = t_o);
  check Alcotest.bool "cycles reduced" true (tc < fc)

let test_empty_profile_is_identity () =
  let auto = Builder.build [ fan_trace ] in
  let flat = Packed.freeze auto in
  let tuned = Repack.repack flat (Repack.empty_profile flat) in
  check Alcotest.int "no states moved" 0 (Repack.moved_states tuned);
  check Alcotest.int "no hot prefixes" 0 (Packed.hot_edges tuned);
  check Alcotest.bool "still repacked flavor" true (Packed.is_repacked tuned);
  let r0 = Packed.to_raw flat and r1 = Packed.to_raw tuned in
  check Alcotest.(list int) "same labels"
    (Array.to_list r0.Packed.labels)
    (Array.to_list r1.Packed.labels);
  check Alcotest.(list int) "same hash"
    (Array.to_list r0.Packed.hash_keys)
    (Array.to_list r1.Packed.hash_keys)

let test_profile_shape_mismatch () =
  let auto = Builder.build [ fan_trace ] in
  let flat = Packed.freeze auto in
  let other =
    Packed.freeze
      (Builder.build [ Trace.linear ~id:9 ~kind:"x" [ block_at 0x100 ] ])
  in
  let prof = Repack.empty_profile other in
  Alcotest.check_raises "wrong shape rejected"
    (Invalid_argument "Repack.repack: profile shape does not match the image")
    (fun () -> ignore (Repack.repack flat prof));
  Alcotest.check_raises "merge rejects too"
    (Invalid_argument "Repack.merge: profiles from different images")
    (fun () -> ignore (Repack.merge prof (Repack.empty_profile flat)))

(* The IC charges the precomputed cost the scan would have charged, so a
   warm cache changes wall clock and the hit counters — never the
   simulated cycles. Two consecutive replays of the same stream over one
   image (cold then warm IC) must charge identical cycles. *)
let test_ic_cost_neutral () =
  let auto = Builder.build [ fan_trace ] in
  let flat = Packed.freeze auto in
  let stream =
    Array.of_list
      ([ 0x1000 ] @ List.concat (List.init 20 (fun _ -> [ 0x2000; 0x1000 ])))
  in
  let len = Array.length stream in
  let tuned = Repack.repack flat (Repack.collect flat stream ~len) in
  let run () =
    (* cycles accumulate on the shared image, so charge each run by its
       delta — the point is replaying over the SAME image so the second
       run starts with a warm inline cache *)
    let before = Packed.cycles tuned in
    let rep = Replayer.create_packed tuned in
    Replayer.feed_run rep stream ~len;
    (Packed.cycles tuned - before, Replayer.tbb_counts rep)
  in
  let c1, t1 = run () in
  let hits_cold = Packed.ic_hits tuned in
  let c2, t2 = run () in
  let hits_warm = Packed.ic_hits tuned - hits_cold in
  check Alcotest.int "cycles identical cold vs warm" c1 c2;
  check Alcotest.(list (pair int int)) "profiles identical" t1 t2;
  check Alcotest.bool "warm cache hits at least as often" true
    (hits_warm >= hits_cold)

(* ---------------- build_hash sizing (satellite fix) ---------------- *)

let test_build_hash_dedupes_before_sizing () =
  (* 5 insertions, 2 distinct addresses: the table must be sized (and
     laid out) exactly as for the deduplicated association list, with the
     last value winning per address. *)
  let dup = [ (0x100, 1); (0x200, 2); (0x100, 3); (0x100, 4); (0x200, 5) ] in
  let deduped = [ (0x100, 4); (0x200, 5) ] in
  let k1, v1 = Packed.build_hash dup 8 in
  let k2, v2 = Packed.build_hash deduped 8 in
  check Alcotest.(array int) "keys" k2 k1;
  check Alcotest.(array int) "vals" v2 v1;
  (* 2 distinct heads need only the minimum table, not one sized for 5 *)
  check Alcotest.int "table sized from distinct count" (Array.length k2)
    (Array.length k1);
  let lookup keys vals pc =
    let mask = Array.length keys - 1 in
    let rec go i =
      if keys.(i) = pc then Some vals.(i)
      else if keys.(i) < 0 then None
      else go ((i + 1) land mask)
    in
    go (Packed.hash_pc mask pc)
  in
  check Alcotest.(option int) "last value wins" (Some 4) (lookup k1 v1 0x100);
  check Alcotest.(option int) "other key" (Some 5) (lookup k1 v1 0x200);
  Alcotest.check_raises "negative address rejected"
    (Invalid_argument "Packed: negative head address") (fun () ->
      ignore (Packed.build_hash [ (-1, 0) ] 4))

(* ---------------- of_raw validation of the repacked discipline ------- *)

let repacked_fixture () =
  let auto = Builder.build [ fan_trace ] in
  let flat = Packed.freeze auto in
  let stream =
    Array.of_list ([ 0x1000 ] @ List.concat (List.init 8 (fun _ -> [ 0x2000; 0x1000 ])))
  in
  let len = Array.length stream in
  Repack.repack flat (Repack.collect flat stream ~len)

let copy_raw (r : Packed.raw) =
  {
    Packed.offsets = Array.copy r.Packed.offsets;
    labels = Array.copy r.Packed.labels;
    targets = Array.copy r.Packed.targets;
    state_trace = Array.copy r.Packed.state_trace;
    state_tbb = Array.copy r.Packed.state_tbb;
    state_start = Array.copy r.Packed.state_start;
    state_insns = Array.copy r.Packed.state_insns;
    hash_keys = Array.copy r.Packed.hash_keys;
    hash_vals = Array.copy r.Packed.hash_vals;
    hot_len = Array.copy r.Packed.hot_len;
    orig_of = Array.copy r.Packed.orig_of;
  }

let test_of_raw_repacked_validation () =
  let tuned = repacked_fixture () in
  let r = Packed.to_raw tuned in
  let expect_invalid name mutate =
    let copy = copy_raw r in
    mutate copy;
    try
      ignore (Packed.of_raw ~repacked:true copy);
      Alcotest.failf "of_raw accepted %s" name
    with Invalid_argument _ -> ()
  in
  (* the untouched raw repacked image is accepted... *)
  ignore (Packed.of_raw ~repacked:true (copy_raw r));
  (* ...but not as a flat image: prefixes and a permuted orig_of violate
     the flat discipline *)
  (try
     ignore (Packed.of_raw (copy_raw r));
     Alcotest.fail "flat of_raw accepted a repacked layout"
   with Invalid_argument _ -> ());
  expect_invalid "hot prefix longer than span" (fun c ->
      c.Packed.hot_len.(1) <- 1 + c.Packed.offsets.(2) - c.Packed.offsets.(1));
  expect_invalid "negative hot_len" (fun c -> c.Packed.hot_len.(1) <- -1);
  expect_invalid "duplicate label in prefix" (fun c ->
      (* fan state in slot 1 has span 3, prefix >= 1 *)
      let lo = c.Packed.offsets.(1) in
      c.Packed.hot_len.(1) <- 2;
      c.Packed.labels.(lo + 1) <- c.Packed.labels.(lo));
  expect_invalid "orig_of not a permutation" (fun c ->
      c.Packed.orig_of.(1) <- c.Packed.orig_of.(2));
  expect_invalid "NTE not pinned" (fun c ->
      let tmp = c.Packed.orig_of.(0) in
      c.Packed.orig_of.(0) <- c.Packed.orig_of.(1);
      c.Packed.orig_of.(1) <- tmp)

(* ---------------- end to end: pgo_replay on a real capture ----------- *)

let test_pgo_replay_listscan () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Packed.freeze (Builder.build traces) in
  let path = Filename.temp_file "tea_repack" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  let tuned, baseline, tuned_rep =
    Repack.pgo_replay flat ~insns starts ~len
  in
  check Alcotest.bool "repacked" true (Packed.is_repacked tuned);
  check Alcotest.(list (pair int int)) "identical TBB mapping"
    (Replayer.tbb_counts baseline) (Replayer.tbb_counts tuned_rep);
  check (Alcotest.float 0.0) "identical coverage"
    (Replayer.coverage baseline) (Replayer.coverage tuned_rep);
  check Alcotest.bool "never more simulated cycles" true
    (Replayer.cycles tuned_rep <= Replayer.cycles baseline);
  check Alcotest.bool "ic observed every step" true
    (Packed.ic_hits tuned + Packed.ic_misses tuned = len);
  (* src counters untouched by the pgo cycle *)
  check Alcotest.int "src stats untouched" 0
    (Packed.stats flat).Tea_core.Transition.steps

(* ---------------- --metrics golden with IC counters ---------------- *)

let update_dir = Sys.getenv_opt "TEA_GOLDEN_UPDATE"

let golden_root =
  if Sys.file_exists "goldens" then "goldens"
  else Filename.concat "test" "goldens"

let check_golden_file name actual =
  match update_dir with
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc actual;
      close_out oc;
      Printf.printf "updated %s (%d bytes)\n%!" path (String.length actual)
  | None ->
      let path = Filename.concat golden_root name in
      let expected =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error _ ->
          Alcotest.failf
            "missing golden %s - regenerate with TEA_GOLDEN_UPDATE" path
      in
      if expected <> actual then begin
        let got = Filename.temp_file "tea_golden" ".got" in
        let oc = open_out_bin got in
        output_string oc actual;
        close_out oc;
        Alcotest.failf "golden mismatch for %s (actual output in %s)" name got
      end

(* The text dump `tea_tool replay micro:listscan --engine=packed --pgo
   --metrics` produces: the flat profiling replay and the repacked replay
   back to back, so the snapshot carries the packed.ic_hit/ic_miss split
   alongside the counters metrics_listscan.txt already freezes. Every
   counter is simulated-time or event-count, so the rendering is stable
   byte for byte. *)
let test_metrics_repack_golden () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  Probe.install ();
  let snap =
    Fun.protect
      ~finally:(fun () -> if Probe.enabled () then ignore (Probe.uninstall ()))
      (fun () ->
        let r = Tea_dbt.Stardbt.record ~strategy image in
        let traces = Tea_traces.Trace_set.to_list r.Tea_dbt.Stardbt.set in
        let _ =
          Tea_pinsim.Pintool_replay.replay ~engine:`Packed ~pgo:true ~traces
            image
        in
        Probe.uninstall ())
  in
  check_golden_file "metrics_repack_listscan.txt"
    (Tea_report.Stats.render ~title:"telemetry" snap)

let () =
  Alcotest.run "tea_repack"
    [
      ( "differential",
        [
          qtest prop_repack_pure_permutation;
          qtest prop_feed_run_equals_feed_addr;
          qtest prop_collect_merges;
          qtest prop_teapk2_roundtrip;
          qtest prop_sharded_repacked_replay;
        ] );
      ( "layout",
        [
          Alcotest.test_case "hot-prefix ordering" `Quick
            test_hot_prefix_ordering;
          Alcotest.test_case "empty profile is identity" `Quick
            test_empty_profile_is_identity;
          Alcotest.test_case "shape mismatch rejected" `Quick
            test_profile_shape_mismatch;
          Alcotest.test_case "inline cache is cost-neutral" `Quick
            test_ic_cost_neutral;
          Alcotest.test_case "build_hash dedupes before sizing" `Quick
            test_build_hash_dedupes_before_sizing;
          Alcotest.test_case "of_raw repacked validation" `Quick
            test_of_raw_repacked_validation;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "pgo_replay on listscan" `Quick
            test_pgo_replay_listscan;
          Alcotest.test_case "--metrics golden with IC counters" `Quick
            test_metrics_repack_golden;
        ] );
    ]
