(* Closed-loop continuous PGO: epoch-tagged hot image swap.

   Two layers of property: (1) offline — N forced mid-stream swaps
   through the flat / repacked / fused / compiled ladder of the same
   automaton leave the profile bit-identical between the sequential
   Replayer.rebind chain and the Shard.replay_span chain at jobs 2/4,
   and leave TBB counts identical to a no-swap flat replay; (2) live —
   a daemon booted on a mistuned drift reference rebuilds and hot-swaps
   under traffic, and the fleet profile still equals the sequential
   offline replay (honouring the recorded swap schedule) at jobs 1/2/4.
   Plus units for the drift-trigger hysteresis and the TEAEP1 fleet
   profile snapshot. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Builder = Tea_core.Builder
module Automaton = Tea_core.Automaton
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Pc_trace = Tea_core.Pc_trace
module Repack = Tea_opt.Repack
module Fuse = Tea_opt.Fuse
module Retune = Tea_opt.Retune
module Trigger = Tea_observe.Trigger
module Drift = Tea_observe.Drift
module Profile = Tea_parallel.Profile
module Shard = Tea_parallel.Shard
module Pool = Tea_parallel.Pool
module Frame = Tea_serve.Frame
module Server = Tea_serve.Server
module Client = Tea_serve.Client

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let profile = Alcotest.testable Profile.pp Profile.equal

(* ---------------- fixture ---------------- *)

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

let traces =
  [ Trace.linear ~id:0 ~kind:"test"
      [ block_at 0x100; block_at 0x200; block_at 0x300 ];
    Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ];
    Trace.linear ~id:2 ~kind:"test" [ block_at 0x500; block_at 0x100 ] ]

let flat () = Packed.freeze (Builder.build traces)

(* the hot/cold address pool random streams draw from (0x900 is cold) *)
let pool_addrs = [| 0x100; 0x200; 0x300; 0x400; 0x500; 0x900 |]

(* one generation of the ladder, tuned on the given stream *)
let tuned_of base starts len =
  let repacked = Repack.repack base (Repack.collect base starts ~len) in
  let fused =
    Fuse.fuse ~profile:(Repack.collect repacked starts ~len) repacked
  in
  (repacked, fused)

(* ---------------- forced mid-stream swaps, offline ---------------- *)

let make_rep engine img =
  match engine with
  | `Packed -> Replayer.create_packed (Packed.dup img)
  | `Compiled -> Replayer.create_compiled (Tea_core.Compiled.of_packed (Packed.dup img))

let engine_of engine img =
  match engine with
  | `Packed -> Replayer.Packed (Packed.dup img)
  | `Compiled -> Replayer.Compiled (Tea_core.Compiled.of_packed (Packed.dup img))

(* segment bounds from sorted distinct cut positions *)
let segments_of_cuts cuts len =
  let bounds = (0 :: cuts) @ [ len ] in
  let rec pair = function
    | lo :: (hi :: _ as rest) -> (lo, hi) :: pair rest
    | _ -> []
  in
  pair bounds

(* sequential reference: one replayer, rebound in place at every cut *)
let run_rebind epochs segs ~insns starts =
  let img0, eng0 = epochs 0 in
  let rep = make_rep eng0 img0 in
  List.iteri
    (fun i (lo, hi) ->
      if i > 0 then begin
        let img, eng = epochs i in
        Replayer.rebind rep (engine_of eng img)
      end;
      Replayer.feed_run rep ~off:lo ~insns starts ~len:(hi - lo))
    segs;
  (Profile.of_replayer rep, Replayer.tbb_counts rep)

(* sharded: one replay_span per segment, exit state translated through
   orig space into the next epoch's layout *)
let run_spans pool epochs segs ~insns starts =
  let profs = ref [] in
  let entry = ref None in
  let prev = ref None in
  List.iteri
    (fun i (lo, hi) ->
      let img, eng = epochs i in
      (match !prev with
      | Some prev_img ->
          entry :=
            Option.map
              (fun e ->
                if e = Automaton.nte then e
                else Packed.slot_of_state img (Packed.orig_state prev_img e))
              !entry
      | None -> ());
      let p, exit_state =
        Shard.replay_span pool img ~make:(make_rep eng) ?entry:!entry ~insns
          starts ~off:lo ~len:(hi - lo)
      in
      profs := p :: !profs;
      entry := Some exit_state;
      prev := Some img)
    segs;
  Profile.merge_all (List.rev !profs)

let gen_swap_case =
  let open QCheck.Gen in
  let starts =
    map
      (fun picks ->
        Array.of_list
          (List.map (fun i -> pool_addrs.(i mod Array.length pool_addrs)) picks))
      (list_size (int_range 12 120) (int_range 0 1000))
  in
  pair starts (list_size (int_range 1 3) (int_range 1 1000))

let prop_forced_swaps =
  QCheck.Test.make ~name:"N mid-stream swaps: rebind == spans, tbb invariant"
    ~count:30 (QCheck.make gen_swap_case) (fun (starts, rawcuts) ->
      let len = Array.length starts in
      let insns = Array.make len 1 in
      let cuts =
        List.sort_uniq compare (List.map (fun c -> 1 + (c mod (len - 1))) rawcuts)
      in
      let segs = segments_of_cuts cuts len in
      let base = flat () in
      let repacked, fused = tuned_of base starts len in
      (* epoch ladder: flat -> repacked -> fused -> fused(compiled) -> … *)
      let ladder =
        [| (base, `Packed); (repacked, `Packed); (fused, `Packed);
           (fused, `Compiled) |]
      in
      let epochs i = ladder.(i mod Array.length ladder) in
      let seq_prof, seq_tbb = run_rebind epochs segs ~insns starts in
      (* TBBs are layout-invariant: identical to a no-swap flat replay *)
      let rep0 = make_rep `Packed (flat ()) in
      Replayer.feed_run rep0 ~insns starts ~len;
      seq_tbb = Replayer.tbb_counts rep0
      && List.for_all
           (fun jobs ->
             Pool.with_pool ~jobs (fun pool ->
                 let par = run_spans pool epochs segs ~insns starts in
                 Profile.equal seq_prof par))
           [ 2; 4 ])

let test_rebind_basics () =
  let base = flat () in
  let starts = Array.map (fun i -> pool_addrs.(i mod 5)) (Array.init 40 Fun.id) in
  let len = Array.length starts in
  let insns = Array.make len 1 in
  let repacked, fused = tuned_of base starts len in
  (* rebind refuses a reference engine and mismatched automata *)
  let rep = make_rep `Packed base in
  Alcotest.check_raises "reference engine"
    (Invalid_argument "Replayer.rebind: reference engine cannot be swapped")
    (fun () ->
      Replayer.rebind rep
        (Replayer.Reference
           (Tea_core.Transition.create Tea_core.Transition.config_global_local
              (Builder.build traces))));
  (* a full swap chain carries cycles and stats: total steps equal the
     no-swap replay's *)
  Replayer.feed_run rep ~insns starts ~len:20;
  Replayer.rebind rep (engine_of `Packed repacked);
  Replayer.feed_run rep ~off:20 ~insns starts ~len:(len - 20);
  Replayer.rebind rep (engine_of `Compiled fused);
  let rep0 = make_rep `Packed (flat ()) in
  Replayer.feed_run rep0 ~insns starts ~len;
  check Alcotest.int "steps survive swaps"
    (Replayer.stats rep0).Tea_core.Transition.steps
    (Replayer.stats rep).Tea_core.Transition.steps;
  check
    Alcotest.(list (pair int int))
    "tbb counts survive swaps" (Replayer.tbb_counts rep0)
    (Replayer.tbb_counts rep)

(* ---------------- trigger hysteresis ---------------- *)

let test_trigger_debounce () =
  (* an oscillating gauge never fires an up=2 trigger *)
  let t = Trigger.create ~up:2 ~cooldown:0 () in
  for _ = 1 to 20 do
    check Alcotest.bool "over" false (Trigger.observe t true);
    check Alcotest.bool "under" false (Trigger.observe t false)
  done;
  check Alcotest.int "never fired" 0 (Trigger.fired t);
  (* two consecutive crossings fire exactly once *)
  let t = Trigger.create ~up:2 ~cooldown:3 () in
  check Alcotest.bool "first" false (Trigger.observe t true);
  check Alcotest.bool "second fires" true (Trigger.observe t true);
  check Alcotest.int "fired once" 1 (Trigger.fired t);
  (* cooldown swallows the next 3 observations, streak included *)
  check Alcotest.bool "cooling" false (Trigger.observe t true);
  check Alcotest.bool "cooling" false (Trigger.observe t true);
  check Alcotest.bool "armed during cooldown" false (Trigger.armed t);
  check Alcotest.bool "cooling" false (Trigger.observe t true);
  check Alcotest.bool "re-armed" true (Trigger.armed t);
  (* the streak restarts from zero after the cooldown *)
  check Alcotest.bool "restart streak" false (Trigger.observe t true);
  check Alcotest.bool "second fire" true (Trigger.observe t true);
  check Alcotest.int "fired twice" 2 (Trigger.fired t)

let test_trigger_edge_cases () =
  (* up=1 cooldown=0 fires on every crossing *)
  let t = Trigger.create ~up:1 ~cooldown:0 () in
  check Alcotest.bool "fires" true (Trigger.observe t true);
  check Alcotest.bool "fires again" true (Trigger.observe t true);
  check Alcotest.bool "under" false (Trigger.observe t false);
  check Alcotest.int "two fires" 2 (Trigger.fired t);
  Alcotest.check_raises "up < 1"
    (Invalid_argument "Trigger.create: up must be >= 1") (fun () ->
      ignore (Trigger.create ~up:0 ()));
  Alcotest.check_raises "cooldown < 0"
    (Invalid_argument "Trigger.create: cooldown must be >= 0") (fun () ->
      ignore (Trigger.create ~cooldown:(-1) ()))

(* ---------------- the live daemon ---------------- *)

let with_tmp suffix f =
  let path = Filename.temp_file "tea_test_retune" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let bytes_of_events events =
  with_tmp ".trc" @@ fun path ->
  let w = Pc_trace.open_writer ~format:Pc_trace.V2 path in
  List.iter (Pc_trace.write_event w) events;
  Pc_trace.close_writer w;
  Pc_trace.read_all path

let stream_of hot n =
  bytes_of_events
    (List.init n (fun i ->
         Pc_trace.Block { start = List.nth hot (i mod List.length hot); insns = 1 }))

let sock_path () =
  let p = Filename.temp_file "tea_test_retune" ".sock" in
  Sys.remove p;
  p

let epoch_gauge text =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         match String.split_on_char ' ' line with
         | [ "tea_image_epoch"; v ] -> int_of_string_opt v
         | _ -> None)

(* a daemon that must swap: the drift reference points at a state the
   traffic never visits, so every completed session measures maximal
   drift and the up=1 trigger fires immediately *)
let run_swapping_daemon ~jobs =
  let base = flat () in
  let drift = Drift.create ~threshold:0.2 [ (5000, 100) ] in
  let retune = { Server.default_retune with up = 1; cooldown = 0 } in
  let srv =
    Server.create ~offline_check:true ~drift ~base ~retune ~jobs ~image:base
      (Frame.Unix_sock (sock_path ()))
  in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run srv) in
  let addr = Server.addr srv in
  let s = stream_of [ 0x100; 0x200; 0x300 ] 40 in
  let s2 = stream_of [ 0x400; 0x300; 0x500 ] 30 in
  let sent = ref 0 in
  (* phase 1: traffic until the scrape shows the epoch bumped *)
  let deadline = 400 in
  let swapped = ref false in
  let tries = ref 0 in
  while (not !swapped) && !tries < deadline do
    incr tries;
    ignore (Client.replay_string addr s);
    incr sent;
    (match epoch_gauge (Client.scrape addr) with
    | Some e when e >= 1 -> swapped := true
    | _ -> ignore (Unix.select [] [] [] 0.01))
  done;
  if not !swapped then Alcotest.fail "daemon never swapped its image";
  (* phase 2: post-swap traffic replays on the new epoch *)
  for _ = 1 to 4 do
    ignore (Client.replay_string addr s2);
    incr sent
  done;
  Server.stop srv;
  Domain.join driver;
  check Alcotest.int "all sessions completed" !sent (Server.completed srv);
  if Server.epoch srv < 1 then Alcotest.fail "epoch not bumped";
  (srv, Server.fleet_profile srv, Server.offline_profile srv)

let test_daemon_swap_gate () =
  (* the acceptance gate: fleet == offline-sequential across the swap,
     at jobs 1/2/4 *)
  List.iter
    (fun jobs ->
      let srv, fleet, offline = run_swapping_daemon ~jobs in
      check profile
        (Printf.sprintf "fleet == offline across swaps (jobs %d)" jobs)
        offline fleet;
      check Alcotest.bool "swap pause measured" true
        (Server.swap_pause_ns srv >= 0))
    [ 1; 2; 4 ]

let test_fleet_edge_profile () =
  (* satellite 1: the retained traffic round-trips as a TEAEP1 snapshot
     over the flat base, equal to collecting the streams directly *)
  let base = flat () in
  let srv =
    Server.create ~retain:true ~base ~jobs:1 ~image:base
      (Frame.Unix_sock (sock_path ()))
  in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run ~until_sessions:2 srv) in
  let s1 = stream_of [ 0x100; 0x200; 0x300 ] 30 in
  let s2 = stream_of [ 0x400; 0x300 ] 20 in
  ignore (Client.replay_string (Server.addr srv) s1);
  ignore (Client.replay_string (Server.addr srv) s2);
  Domain.join driver;
  let prof = Server.fleet_edge_profile srv in
  let expect =
    Retune.collect_segments (flat ())
      (Retune.segments_of_raws [ s1; s2 ])
  in
  check
    Alcotest.(array int)
    "fleet edge profile visits" expect.Repack.visits prof.Repack.visits;
  with_tmp ".teaep" @@ fun path ->
  Repack.save_profile path prof;
  let back = Repack.load_profile path in
  check Alcotest.(array int) "TEAEP1 round-trip" prof.Repack.visits
    back.Repack.visits

let test_client_retry () =
  (* satellite 2: a client racing daemon startup connects once the
     socket appears; without retries the same race is an immediate
     error *)
  let path = sock_path () in
  let addr = Frame.Unix_sock path in
  (match Client.replay_string ~retries:0 addr "x" with
  | _ -> Alcotest.fail "connect to a missing socket must fail"
  | exception Unix.Unix_error _ -> ());
  (match Client.replay_string ~retries:1 ~backoff:(-1.0) addr "x" with
  | _ -> Alcotest.fail "negative backoff must be rejected"
  | exception Invalid_argument _ -> ());
  let image = flat () in
  let s = stream_of [ 0x100; 0x200; 0x300 ] 25 in
  let server_domain =
    Domain.spawn (fun () ->
        (* let the client hit ENOENT a few times first *)
        ignore (Unix.select [] [] [] 0.15);
        let srv = Server.create ~jobs:1 ~image addr in
        Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
        Server.run ~until_sessions:1 srv;
        Server.fleet_profile srv)
  in
  let p = Client.replay_string ~retries:10 ~backoff:0.02 addr s in
  let fleet = Domain.join server_domain in
  check profile "retried session profile folded into the fleet" fleet p

let () =
  Alcotest.run "tea_retune"
    [
      ( "swap",
        [
          qtest prop_forced_swaps;
          Alcotest.test_case "rebind basics" `Quick test_rebind_basics;
        ] );
      ( "trigger",
        [
          Alcotest.test_case "debounce" `Quick test_trigger_debounce;
          Alcotest.test_case "edge cases" `Quick test_trigger_edge_cases;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "gate: fleet == offline across swaps" `Quick
            test_daemon_swap_gate;
          Alcotest.test_case "fleet edge profile (TEAEP1)" `Quick
            test_fleet_edge_profile;
          Alcotest.test_case "client connect retry" `Quick test_client_retry;
        ] );
    ]
