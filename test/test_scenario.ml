(* Adversarial replay scenarios: the PCTR3 event codec, the demuxing
   Multi_replayer, demux-first sharding, and the scenario builders.

   The headline property is the PR's hard gate — demuxed replay of an
   interleaved multi-asid stream must be observationally identical (full
   per-asid Profile snapshot equality) to replaying each asid's
   projection in isolation, at jobs 1/2/4, with and without profile-
   guided repacking and superstate fusion. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Pc_trace = Tea_core.Pc_trace
module Multi = Tea_core.Multi_replayer
module Scenario = Tea_workloads.Scenario
module Pool = Tea_parallel.Pool
module Profile = Tea_parallel.Profile
module Shard = Tea_parallel.Shard

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let profile = Alcotest.testable Profile.pp Profile.equal

let pp_event fmt = function
  | Pc_trace.Block { start; insns } ->
      Format.fprintf fmt "Block(0x%x,%d)" start insns
  | Pc_trace.Switch { asid } -> Format.fprintf fmt "Switch(%d)" asid
  | Pc_trace.Invalidate { asid } -> Format.fprintf fmt "Invalidate(%d)" asid
  | Pc_trace.Interrupt -> Format.fprintf fmt "Interrupt"

let event = Alcotest.testable pp_event ( = )
let stamped = Alcotest.(list (pair int event))

let with_tmp f =
  let path = Filename.temp_file "tea_test_scn" ".trc" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_v3 path events =
  let w = Pc_trace.open_writer ~format:Pc_trace.V3 path in
  List.iter (Pc_trace.write_event w) events;
  Pc_trace.close_writer w

let read_stamped path =
  List.rev
    (Pc_trace.fold_events path [] (fun acc ~asid ev -> (asid, ev) :: acc))

(* ---------------- PCTR3 codec ---------------- *)

let test_v3_roundtrip () =
  let events =
    [ Pc_trace.Block { start = 0x100; insns = 3 };
      Pc_trace.Switch { asid = 2 };
      Pc_trace.Block { start = 0x4000; insns = 5 };
      Pc_trace.Block { start = 0x4010; insns = 1 };
      Pc_trace.Interrupt;
      Pc_trace.Switch { asid = 0 };
      Pc_trace.Block { start = 0x108; insns = 2 };
      Pc_trace.Invalidate { asid = 2 };
      Pc_trace.Switch { asid = 2 };
      Pc_trace.Block { start = 0x4000; insns = 5 } ]
  in
  with_tmp @@ fun path ->
  write_v3 path events;
  check stamped "events round-trip with asid stamps"
    [ (0, List.nth events 0); (2, List.nth events 1); (2, List.nth events 2);
      (2, List.nth events 3); (2, List.nth events 4); (0, List.nth events 5);
      (0, List.nth events 6); (0, List.nth events 7); (2, List.nth events 8);
      (2, List.nth events 9) ]
    (read_stamped path);
  check Alcotest.int "length counts blocks only" 5 (Pc_trace.length path)

(* Per-asid delta chains: interleaving two loops must still compress, and
   decode must restore each asid's own previous-address context. *)
let test_v3_delta_chains () =
  with_tmp @@ fun path ->
  let w = Pc_trace.open_writer ~format:Pc_trace.V3 path in
  for _ = 1 to 50 do
    Pc_trace.switch_asid w 0;
    Pc_trace.write w ~start:0x1000 ~insns:1;
    Pc_trace.write w ~start:0x1010 ~insns:2;
    Pc_trace.switch_asid w 7;
    Pc_trace.write w ~start:0x9000000 ~insns:3;
    Pc_trace.write w ~start:0x9000020 ~insns:4
  done;
  Pc_trace.close_writer w;
  let blocks_of a =
    List.filter_map
      (fun (asid, ev) ->
        match ev with
        | Pc_trace.Block { start; insns } when asid = a -> Some (start, insns)
        | _ -> None)
      (read_stamped path)
  in
  let lap l = List.init 100 (fun i -> List.nth l (i mod 2)) in
  check
    Alcotest.(list (pair int int))
    "asid 0 chain" (lap [ (0x1000, 1); (0x1010, 2) ]) (blocks_of 0);
  check
    Alcotest.(list (pair int int))
    "asid 7 chain" (lap [ (0x9000000, 3); (0x9000020, 4) ]) (blocks_of 7);
  (* steady-state blocks are 1-byte dictionary tokens and switches 2
     bytes, so ~300 events should land well under 2 bytes/event even
     with the first lap's literals *)
  let size = (Unix.stat path).Unix.st_size in
  if size > 550 then
    Alcotest.failf "interleaved stream did not compress: %d bytes" size

let test_v3_writer_guards () =
  with_tmp @@ fun path ->
  let w = Pc_trace.open_writer ~format:Pc_trace.V2 path in
  Alcotest.check_raises "switch_asid on v2"
    (Invalid_argument "Pc_trace.switch_asid: events require a V3 writer")
    (fun () -> Pc_trace.switch_asid w 1);
  Pc_trace.close_writer w;
  with_tmp @@ fun path ->
  let w = Pc_trace.open_writer ~format:Pc_trace.V3 path in
  Alcotest.check_raises "negative asid"
    (Invalid_argument "Pc_trace.switch_asid: negative asid") (fun () ->
      Pc_trace.switch_asid w (-1));
  Pc_trace.close_writer w

let expect_corrupt what f =
  try
    f ();
    Alcotest.failf "%s: expected Corrupt" what
  with Pc_trace.Corrupt _ -> ()

let test_v3_corruption () =
  (* header shorter than any magic *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "PCT";
      close_out oc;
      expect_corrupt "truncated header" (fun () -> ignore (Pc_trace.length path)));
  (* short-but-foreign: 6 bytes that match no magic and cannot grow into
     one must read as a bad magic, not a truncated header *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "FOOBAR";
      close_out oc;
      Alcotest.check_raises "short foreign file" (Pc_trace.Corrupt "bad magic")
        (fun () -> ignore (Pc_trace.length path)));
  (* while a true prefix of a magic is still a truncated header *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "TEAPC1";
      close_out oc;
      Alcotest.check_raises "magic prefix" (Pc_trace.Corrupt "truncated header")
        (fun () -> ignore (Pc_trace.length path)));
  (* an undefined dictionary token right after the magic *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "PCTR3\n";
      output_byte oc 10;
      close_out oc;
      expect_corrupt "bad dictionary token" (fun () ->
          ignore (Pc_trace.length path)));
  (* truncation inside the last record's varints *)
  with_tmp (fun path ->
      write_v3 path
        [ Pc_trace.Switch { asid = 3 };
          Pc_trace.Block { start = 0x123456; insns = 7 } ];
      let s = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub s 0 (String.length s - 1));
      close_out oc;
      expect_corrupt "mid-run truncation" (fun () ->
          ignore (Pc_trace.length path)))

(* The iter_chunks/Shard audit outcome: the single-stream view refuses a
   v3 event stream (chunking it would erase asid boundaries and cut
   points), while a pure block-stream v3 file still works everywhere. *)
let test_v3_single_stream_view () =
  with_tmp (fun path ->
      write_v3 path
        [ Pc_trace.Block { start = 0x100; insns = 1 };
          Pc_trace.Switch { asid = 1 };
          Pc_trace.Block { start = 0x200; insns = 1 } ];
      expect_corrupt "fold on event stream" (fun () ->
          Pc_trace.fold path () (fun () ~start:_ ~insns:_ -> ()));
      expect_corrupt "iter_chunks on event stream" (fun () ->
          Pc_trace.iter_chunks path (fun ~starts:_ ~insns:_ ~len:_ -> ())));
  with_tmp (fun path ->
      write_v3 path
        [ Pc_trace.Block { start = 0x100; insns = 1 };
          Pc_trace.Block { start = 0x200; insns = 2 } ];
      let back =
        List.rev
          (Pc_trace.fold path [] (fun acc ~start ~insns -> (start, insns) :: acc))
      in
      check
        Alcotest.(list (pair int int))
        "pure-block v3 folds" [ (0x100, 1); (0x200, 2) ] back)

let test_v1_v2_backward_compat () =
  let records = [ (0x100, 1); (0x90, 4); (0x100, 1); (0x2000, 0) ] in
  List.iter
    (fun format ->
      with_tmp (fun path ->
          let w = Pc_trace.open_writer ~format path in
          List.iter (fun (start, insns) -> Pc_trace.write w ~start ~insns) records;
          Pc_trace.close_writer w;
          check stamped "old formats read as asid-0 blocks"
            (List.map
               (fun (start, insns) -> (0, Pc_trace.Block { start; insns }))
               records)
            (read_stamped path)))
    [ Pc_trace.V1; Pc_trace.V2 ]

let gen_events =
  let open QCheck.Gen in
  let block =
    map2
      (fun start insns -> Pc_trace.Block { start; insns })
      (int_range 0 0xFFFFF) (int_range 0 8)
  in
  let ev =
    frequency
      [ (6, block);
        (1, map (fun asid -> Pc_trace.Switch { asid }) (int_range 0 3));
        (1, map (fun asid -> Pc_trace.Invalidate { asid }) (int_range 0 3));
        (1, return Pc_trace.Interrupt) ]
  in
  list_size (int_range 0 200) ev

let prop_v3_roundtrip =
  QCheck.Test.make ~name:"pctr3 round-trips any event stream" ~count:100
    (QCheck.make gen_events) (fun events ->
      with_tmp @@ fun path ->
      write_v3 path events;
      (* reference asid stamping: a fold over the writer's own rules *)
      let expect =
        List.rev
          (snd
             (List.fold_left
                (fun (cur, acc) ev ->
                  match ev with
                  | Pc_trace.Switch { asid } -> (asid, (asid, ev) :: acc)
                  | _ -> (cur, (cur, ev) :: acc))
                (0, []) events))
      in
      read_stamped path = expect)

(* ---------------- Multi_replayer on the hand fixture ---------------- *)

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

(* T1 cycles 0x100->0x200->0x300->0x100, T2 chains 0x400->0x300. *)
let t1 =
  Trace.linear ~id:0 ~kind:"test" ~cycle:true
    [ block_at 0x100; block_at 0x200; block_at 0x300 ]

let t2 = Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ]

let fixture_packed () = Packed.freeze (Builder.build [ t1; t2 ])

let fixture_make =
  let img = lazy (fixture_packed ()) in
  fun _ -> Replayer.create_packed (Packed.dup (Lazy.force img))

let feed_blocks m asid addrs =
  List.iter
    (fun start -> Multi.feed m ~asid (Pc_trace.Block { start; insns = 1 }))
    addrs

(* Golden interrupt unit: T1 is a cycle, so the uncut lap pair never
   exits; the mid-trace cut forces NTE with no accounting, so the second
   lap re-enters — counts identical, one extra enter, still zero exits. *)
let test_interrupt_golden () =
  let lap = [ 0x100; 0x200; 0x300 ] in
  let m = Multi.create fixture_make in
  feed_blocks m 0 lap;
  Multi.feed m ~asid:0 Pc_trace.Interrupt;
  feed_blocks m 0 lap;
  let cut = List.assoc 0 (Multi.snapshots m) in
  check Alcotest.int "interrupts counted" 1 (Multi.interrupts m 0);
  check Alcotest.int "re-entered after the cut" 2 cut.Replayer.enters;
  check Alcotest.int "no spurious exit from the cut" 0 cut.Replayer.exits;
  check Alcotest.int "coverage intact" 6 cut.Replayer.covered;
  check Alcotest.int "steps" 6 cut.Replayer.steps;
  check
    Alcotest.(list (pair int int))
    "per-state counts match the uncut run"
    (let m' = Multi.create fixture_make in
     feed_blocks m' 0 (lap @ lap);
     (List.assoc 0 (Multi.snapshots m')).Replayer.counts)
    cut.Replayer.counts;
  (* and the uncut run entered only once *)
  let m' = Multi.create fixture_make in
  feed_blocks m' 0 (lap @ lap);
  check Alcotest.int "uncut lap pair enters once"
    1 (List.assoc 0 (Multi.snapshots m')).Replayer.enters

(* Golden SMC unit: invalidation cuts T1 mid-cycle; the next block 0x400
   is T2's head, entering from NTE exactly as a fresh replay would. *)
let test_smc_golden () =
  let m = Multi.create fixture_make in
  feed_blocks m 0 [ 0x100; 0x200; 0x300 ];
  Multi.feed m ~asid:0 (Pc_trace.Invalidate { asid = 0 });
  feed_blocks m 0 [ 0x400; 0x300 ];
  let s = List.assoc 0 (Multi.snapshots m) in
  check Alcotest.int "invalidations counted" 1 (Multi.invalidations m 0);
  check Alcotest.int "T1 then T2 entered" 2 s.Replayer.enters;
  check Alcotest.int "no spurious exit" 0 s.Replayer.exits;
  check Alcotest.int "covered" 5 s.Replayer.covered;
  (* invalidating an asid that never executed is a no-op *)
  Multi.feed m ~asid:0 (Pc_trace.Invalidate { asid = 9 });
  check Alcotest.int "unknown asid untouched" 0 (Multi.invalidations m 9);
  check
    Alcotest.(list Alcotest.int)
    "no entry materialized" [ 0 ] (Multi.asids m)

let test_multi_demux_fixture () =
  (* two asids over the same automaton, interleaved by hand; demux must
     equal feeding each asid's blocks alone *)
  let a_blocks = [ 0x100; 0x200; 0x300; 0x100 ]
  and b_blocks = [ 0x400; 0x300; 0x400; 0x300 ] in
  let m = Multi.create fixture_make in
  List.iter2
    (fun a b ->
      feed_blocks m 1 [ a ];
      feed_blocks m 2 [ b ])
    a_blocks b_blocks;
  check Alcotest.(list int) "asids" [ 1; 2 ] (Multi.asids m);
  let solo blocks =
    let m' = Multi.create fixture_make in
    feed_blocks m' 5 blocks;
    List.assoc 5 (Multi.snapshots m')
  in
  check profile "asid 1 demux == isolated" (solo a_blocks)
    (List.assoc 1 (Multi.snapshots m));
  check profile "asid 2 demux == isolated" (solo b_blocks)
    (List.assoc 2 (Multi.snapshots m))

(* ---------------- workload pipeline fixtures ----------------

   Four small generated workloads, each recorded (MRET) and captured
   once; every engine flavor (flat, repacked, fused, repacked+fused) is
   derived from the same stream, so the expensive record/capture work is
   shared across all scenario tests and qcheck cases. *)

type wl = {
  wl_name : string;
  wl_stream : Scenario.stream; (* asid is rewritten per test *)
  wl_flat : Packed.t;
  wl_repacked : Packed.t;
  wl_fused : Packed.t;
  wl_tuned : Packed.t; (* repacked then fused *)
}

let make_wl name image =
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let flat =
    Packed.freeze (Builder.build (Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set))
  in
  let path = Filename.temp_file "tea_test_wl" ".trc" in
  let stream =
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let _ = Tea_pinsim.Trace_capture.record image path in
        Scenario.load_stream ~asid:0 ~name path)
  in
  let starts = stream.Scenario.starts and len = stream.Scenario.len in
  let repacked =
    Tea_opt.Repack.repack flat (Tea_opt.Repack.collect flat starts ~len)
  in
  let tuned =
    Tea_opt.Fuse.fuse
      ~profile:(Tea_opt.Repack.collect repacked starts ~len)
      repacked
  in
  {
    wl_name = name;
    wl_stream = stream;
    wl_flat = flat;
    wl_repacked = repacked;
    wl_fused = Tea_opt.Fuse.fuse flat;
    wl_tuned = tuned;
  }

let workloads =
  lazy
    [| make_wl "copy" (Tea_workloads.Micro.copy_loop ~words:4 ~passes:3 ());
       make_wl "listscan"
         (Tea_workloads.Micro.list_scan ~nodes:16 ~match_every:2 ~passes:2 ());
       make_wl "branchy" (Tea_workloads.Micro.branchy_loop ~iters:40 ());
       make_wl "nested" (Tea_workloads.Micro.nested_loop ~outer:4 ~inner:6 ()) |]

let engine_of wl = function
  | `Flat -> wl.wl_flat
  | `Pgo -> wl.wl_repacked
  | `Fuse -> wl.wl_fused
  | `Tuned -> wl.wl_tuned

let stream_as asid wl =
  Scenario.stream ~asid ~name:wl.wl_name ~starts:wl.wl_stream.Scenario.starts
    ~insns:wl.wl_stream.Scenario.insns ~len:wl.wl_stream.Scenario.len

let snap_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x, p) (y, q) -> x = y && Profile.equal p q)
       a b

(* The gate, as a reusable assertion: write the scenario, replay demuxed
   (sequential at jobs 1, demux-first sharding otherwise) and isolated,
   compare full per-asid snapshots. *)
let gate_scenario ?(jobs = [ 1 ]) ~engine wls scn =
  let selected = Array.of_list wls in
  let img_for a = engine_of selected.(a) engine in
  let make a = Replayer.create_packed (Packed.dup (img_for a)) in
  with_tmp @@ fun path ->
  let _ = Scenario.write_file path scn in
  let isolated = Multi.replay_isolated make path in
  List.for_all
    (fun jobs ->
      let demuxed =
        if jobs = 1 then Multi.snapshots (Multi.replay_events make path)
        else
          Pool.with_pool ~jobs (fun pool ->
              Shard.replay_events pool img_for path)
      in
      snap_eq demuxed isolated)
    jobs

let test_scenario_builders () =
  let wls = Lazy.force workloads in
  let streams = [ stream_as 0 wls.(0); stream_as 1 wls.(1) ] in
  (* interleave: all blocks present, switches only on asid change *)
  let evs = Scenario.events (Scenario.interleave ~quantum:4 streams) in
  let blocks =
    List.length (List.filter (function Pc_trace.Block _ -> true | _ -> false) evs)
  in
  check Alcotest.int "interleave preserves every block"
    (wls.(0).wl_stream.Scenario.len + wls.(1).wl_stream.Scenario.len)
    blocks;
  (* smc: one invalidation per full period *)
  let evs = Scenario.events (Scenario.smc ~period:10 (stream_as 0 wls.(0))) in
  let invs =
    List.length
      (List.filter (function Pc_trace.Invalidate _ -> true | _ -> false) evs)
  in
  check Alcotest.int "smc invalidation count"
    ((wls.(0).wl_stream.Scenario.len - 1) / 10)
    invs;
  (* interrupt: exactly one cut at the default midpoint *)
  let evs = Scenario.events (Scenario.interrupt (stream_as 0 wls.(0))) in
  check Alcotest.int "single midpoint interrupt" 1
    (List.length
       (List.filter (function Pc_trace.Interrupt -> true | _ -> false) evs));
  Alcotest.check_raises "duplicate asids rejected"
    (Invalid_argument "Scenario.interleave: duplicate asid 0") (fun () ->
      Scenario.interleave [ stream_as 0 wls.(0); stream_as 0 wls.(1) ]
        (fun _ -> ()))

let test_smc_gate_all_engines () =
  let wls = Lazy.force workloads in
  List.iter
    (fun engine ->
      let s = stream_as 0 wls.(1) in
      if not (gate_scenario ~jobs:[ 1; 2; 4 ] ~engine [ wls.(1) ]
                (Scenario.smc ~period:7 s))
      then Alcotest.fail "smc demuxed replay diverged from isolated")
    [ `Flat; `Pgo; `Fuse; `Tuned ]

let test_interrupt_gate_all_engines () =
  let wls = Lazy.force workloads in
  List.iter
    (fun engine ->
      let s = stream_as 0 wls.(2) in
      if not (gate_scenario ~jobs:[ 1; 2; 4 ] ~engine [ wls.(2) ]
                (Scenario.interrupt ~every:9 s))
      then Alcotest.fail "interrupt demuxed replay diverged from isolated")
    [ `Flat; `Pgo; `Fuse; `Tuned ]

(* Seam regression for the satellite audit: quantum 1 maximizes asid
   switches, so at jobs 4 nearly every chunk seam of a naive single-
   stream shard would land on a switch boundary. Demux-first sharding
   must keep the gate regardless. *)
let test_seam_on_switch_boundary () =
  let wls = Array.to_list (Lazy.force workloads) in
  let streams = List.mapi (fun a wl -> stream_as a wl) wls in
  if
    not
      (gate_scenario ~jobs:[ 4 ] ~engine:`Flat wls
         (Scenario.interleave ~quantum:1 streams))
  then Alcotest.fail "quantum-1 interleave diverged at jobs 4"

(* The headline qcheck differential: random subsets of 2-4 workloads,
   random quantum and schedule, every engine flavor, at jobs 1/2/4. *)
let gen_interleave_case =
  let open QCheck.Gen in
  let* n = int_range 2 4 in
  let order = [| 0; 1; 2; 3 |] in
  let* () = shuffle_a order in
  let picks = Array.to_list (Array.sub order 0 n) in
  let* quantum = int_range 1 16 in
  let* schedule =
    oneof
      [ return Scenario.Round_robin;
        map (fun s -> Scenario.Random_sched s) (int_range 0 1000) ]
  in
  let* engine = oneofl [ `Flat; `Pgo; `Fuse; `Tuned ] in
  return (picks, quantum, schedule, engine)

let prop_interleave_gate =
  QCheck.Test.make
    ~name:
      "interleaved demuxed replay == isolated per-asid replay (jobs 1/2/4, \
       flat/pgo/fuse/tuned)"
    ~count:12
    (QCheck.make gen_interleave_case)
    (fun (picks, quantum, schedule, engine) ->
      let all = Lazy.force workloads in
      let wls = List.map (fun i -> all.(i)) picks in
      let streams = List.mapi (fun a wl -> stream_as a wl) wls in
      gate_scenario ~jobs:[ 1; 2; 4 ] ~engine wls
        (Scenario.interleave ~quantum ~schedule streams))

(* Interleave composed with cuts: invalidations and interrupts injected
   into a multi-asid schedule still satisfy the gate. *)
let test_mixed_hazards_gate () =
  let all = Lazy.force workloads in
  let wls = [ all.(0); all.(1); all.(3) ] in
  let streams = List.mapi (fun a wl -> stream_as a wl) wls in
  let scn emit =
    let k = ref 0 in
    Scenario.interleave ~quantum:5 streams (fun ev ->
        emit ev;
        incr k;
        if !k mod 37 = 0 then emit (Pc_trace.Invalidate { asid = !k mod 3 });
        if !k mod 53 = 0 then emit Pc_trace.Interrupt)
  in
  List.iter
    (fun engine ->
      if not (gate_scenario ~jobs:[ 1; 2; 4 ] ~engine wls scn) then
        Alcotest.fail "mixed-hazard demuxed replay diverged from isolated")
    [ `Flat; `Tuned ]

let test_shard_load_events () =
  let wls = Lazy.force workloads in
  let s = stream_as 0 wls.(0) in
  with_tmp @@ fun path ->
  let _ = Scenario.write_file path (Scenario.smc ~period:5 s) in
  let runs = Shard.load_events path in
  (match runs with
  | [ (0, rs) ] ->
      check Alcotest.int "blocks preserved across cuts"
        s.Scenario.len
        (List.fold_left (fun acc r -> acc + r.Shard.len) 0 rs);
      check Alcotest.int "one run per period"
        (1 + ((s.Scenario.len - 1) / 5))
        (List.length rs)
  | _ -> Alcotest.fail "expected a single asid");
  (* v1/v2 files load as one uncut asid-0 run *)
  with_tmp @@ fun p2 ->
  let w = Pc_trace.open_writer p2 in
  Pc_trace.write w ~start:0x10 ~insns:1;
  Pc_trace.write w ~start:0x20 ~insns:2;
  Pc_trace.close_writer w;
  match Shard.load_events p2 with
  | [ (0, [ r ]) ] -> check Alcotest.int "v2 single run" 2 r.Shard.len
  | _ -> Alcotest.fail "expected one asid-0 run"

let () =
  Alcotest.run "tea_scenario"
    [
      ( "pctr3",
        [
          Alcotest.test_case "round-trip with events" `Quick test_v3_roundtrip;
          Alcotest.test_case "per-asid delta chains" `Quick test_v3_delta_chains;
          Alcotest.test_case "writer guards" `Quick test_v3_writer_guards;
          Alcotest.test_case "corruption" `Quick test_v3_corruption;
          Alcotest.test_case "single-stream view" `Quick
            test_v3_single_stream_view;
          Alcotest.test_case "v1/v2 backward compat" `Quick
            test_v1_v2_backward_compat;
          qtest prop_v3_roundtrip;
        ] );
      ( "multi_replayer",
        [
          Alcotest.test_case "interrupt golden" `Quick test_interrupt_golden;
          Alcotest.test_case "smc golden" `Quick test_smc_golden;
          Alcotest.test_case "hand-interleaved demux" `Quick
            test_multi_demux_fixture;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "builders" `Quick test_scenario_builders;
          Alcotest.test_case "smc gate (all engines, jobs 1/2/4)" `Quick
            test_smc_gate_all_engines;
          Alcotest.test_case "interrupt gate (all engines, jobs 1/2/4)" `Quick
            test_interrupt_gate_all_engines;
          Alcotest.test_case "seam on switch boundary" `Quick
            test_seam_on_switch_boundary;
          Alcotest.test_case "mixed hazards gate" `Quick test_mixed_hazards_gate;
          Alcotest.test_case "shard event demux" `Quick test_shard_load_events;
          qtest prop_interleave_gate;
        ] );
    ]
