(* Replay-as-a-service: the wire framing, the streaming Pc_trace decoder,
   non-seekable trace I/O, and the tea_serve daemon itself.

   The headline property is the daemon gate — the fleet profile folded
   from N concurrent socket sessions must equal (Profile.equal, i.e.
   bit-for-bit over every replayer observable) the merge of replaying
   each session's byte stream offline, sequentially, at jobs 1/2/4, on
   flat and repacked+fused images, and a mid-stream disconnect must
   neither crash the daemon nor perturb any other session's profile. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Builder = Tea_core.Builder
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Pc_trace = Tea_core.Pc_trace
module Multi = Tea_core.Multi_replayer
module Profile = Tea_parallel.Profile
module Frame = Tea_serve.Frame
module Server = Tea_serve.Server
module Client = Tea_serve.Client

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let profile = Alcotest.testable Profile.pp Profile.equal

let with_tmp f =
  let path = Filename.temp_file "tea_test_serve" ".trc" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* events -> raw trace-file bytes, via the real writer *)
let bytes_of_events ?(format = Pc_trace.V3) events =
  with_tmp @@ fun path ->
  let w = Pc_trace.open_writer ~format path in
  List.iter (Pc_trace.write_event w) events;
  Pc_trace.close_writer w;
  Pc_trace.read_all path

let stamped_of_file path =
  List.rev
    (Pc_trace.fold_events path [] (fun acc ~asid ev -> (asid, ev) :: acc))

let stamped_of_bytes s =
  with_tmp @@ fun path ->
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  stamped_of_file path

(* ---------------- framing ---------------- *)

let test_frame_roundtrip () =
  let frames =
    [ (Frame.tag_data, String.init 300 (fun i -> Char.chr (i mod 256)));
      (Frame.tag_data, "");
      (Frame.tag_end, "");
      (Frame.tag_profile, "p");
      (Frame.tag_error, "boom") ]
  in
  let wire =
    String.concat "" (List.map (fun (t, p) -> Frame.encode t p) frames)
  in
  (* any chunking of the wire bytes must yield exactly the same frames *)
  List.iter
    (fun chunk ->
      let p = Frame.parser_ () in
      let got = ref [] in
      let off = ref 0 in
      let n = String.length wire in
      while !off < n do
        let k = min chunk (n - !off) in
        Frame.parser_feed p ~off:!off ~len:k wire (fun f ->
            got := (f.Frame.tag, f.Frame.payload) :: !got);
        off := !off + k
      done;
      check
        Alcotest.(list (pair char string))
        (Printf.sprintf "chunk %d" chunk)
        frames (List.rev !got);
      check Alcotest.int "no bytes left buffered" 0 (Frame.parser_pending p))
    [ 1; 2; 7; 64; String.length wire ]

let test_frame_hostile_length () =
  (* a length prefix past max_payload must raise, not allocate *)
  let b = Bytes.make 5 '\xFF' in
  Bytes.set b 0 Frame.tag_data;
  let p = Frame.parser_ () in
  Alcotest.check_raises "oversized length"
    (Frame.Corrupt "frame payload too large") (fun () ->
      Frame.parser_feed p (Bytes.to_string b) (fun _ -> ()))

let test_frame_fd_helpers () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Frame.send a Frame.tag_data "hello";
      Frame.send a Frame.tag_end "";
      (match Frame.recv b with
      | Some f ->
          check Alcotest.char "tag" Frame.tag_data f.Frame.tag;
          check Alcotest.string "payload" "hello" f.Frame.payload
      | None -> Alcotest.fail "expected a data frame");
      (match Frame.recv b with
      | Some f -> check Alcotest.char "end tag" Frame.tag_end f.Frame.tag
      | None -> Alcotest.fail "expected the end frame");
      (* clean EOF at a frame boundary *)
      Unix.close a;
      check Alcotest.bool "eof" true (Frame.recv b = None))

let gen_profile =
  let open QCheck.Gen in
  let nat = int_range 0 1_000_000 in
  let counts =
    list_size (int_range 0 20) (pair (int_range 0 5000) (int_range 1 100_000))
  in
  map2
    (fun counts (covered, total, enters, exits, steps) ->
      {
        Profile.counts;
        covered;
        total;
        enters;
        exits;
        steps;
        in_trace_hits = steps / 2;
        cache_hits = steps / 3;
        global_hits = steps / 4;
        global_misses = steps / 5;
        cycles = steps * 3;
      })
    counts
    (tup5 nat nat nat nat nat)

let prop_profile_codec =
  QCheck.Test.make ~name:"profile payload round-trips" ~count:200
    (QCheck.make gen_profile) (fun p ->
      let q = Frame.decode_profile (Frame.encode_profile p) in
      p.Profile.counts = q.Profile.counts && Profile.equal p q)

(* ---------------- streaming decoder ---------------- *)

let gen_events =
  let open QCheck.Gen in
  let block =
    map2
      (fun start insns -> Pc_trace.Block { start; insns })
      (int_range 0 0xFFFFF) (int_range 0 8)
  in
  let ev =
    frequency
      [ (6, block);
        (1, map (fun asid -> Pc_trace.Switch { asid }) (int_range 0 3));
        (1, map (fun asid -> Pc_trace.Invalidate { asid }) (int_range 0 3));
        (1, return Pc_trace.Interrupt) ]
  in
  list_size (int_range 0 200) ev

let decode_chunked chunk s =
  let d = Pc_trace.decoder () in
  let got = ref [] in
  let off = ref 0 in
  let n = String.length s in
  while !off < n do
    let k = min chunk (n - !off) in
    Pc_trace.decoder_feed d ~off:!off ~len:k s (fun ~asid ev ->
        got := (asid, ev) :: !got);
    off := !off + k
  done;
  Pc_trace.decoder_finish d;
  check Alcotest.int "decoder drained" 0 (Pc_trace.decoder_pending d);
  List.rev !got

let prop_decoder_equals_fold =
  (* any chunking of any stream emits exactly the whole-file fold *)
  QCheck.Test.make ~name:"streaming decode == fold_events (v3)" ~count:60
    (QCheck.make
       QCheck.Gen.(pair gen_events (oneofl [ 1; 3; 7; 64; 100_000 ])))
    (fun (events, chunk) ->
      let s = bytes_of_events events in
      decode_chunked chunk s = stamped_of_bytes s)

let test_decoder_v1_v2 () =
  let records = [ (0x100, 1); (0x90, 4); (0x100, 1); (0x2000, 0) ] in
  let events = List.map (fun (start, insns) -> Pc_trace.Block { start; insns }) records in
  List.iter
    (fun format ->
      let s = bytes_of_events ~format events in
      List.iter
        (fun chunk ->
          check
            Alcotest.(list (pair int (testable (fun fmt _ -> Format.fprintf fmt "<event>") ( = ))))
            "v1/v2 chunked decode"
            (List.map (fun ev -> (0, ev)) events)
            (decode_chunked chunk s))
        [ 1; 5; 1000 ])
    [ Pc_trace.V1; Pc_trace.V2 ]

let test_decoder_errors () =
  (* foreign magic poisons the decoder *)
  let d = Pc_trace.decoder () in
  Alcotest.check_raises "foreign magic" (Pc_trace.Corrupt "bad magic")
    (fun () -> Pc_trace.decoder_feed d "FOOBARBAZ" (fun ~asid:_ _ -> ()));
  (* a short foreign prefix is already classifiable *)
  let d = Pc_trace.decoder () in
  Alcotest.check_raises "short foreign prefix" (Pc_trace.Corrupt "bad magic")
    (fun () -> Pc_trace.decoder_feed d "FOOBAR" (fun ~asid:_ _ -> ()));
  (* finish before a full magic: truncated header, idempotent *)
  let d = Pc_trace.decoder () in
  Pc_trace.decoder_feed d "PCT" (fun ~asid:_ _ -> ());
  check Alcotest.bool "format unknown" true (Pc_trace.decoder_format d = None);
  Alcotest.check_raises "finish mid-magic"
    (Pc_trace.Corrupt "truncated header") (fun () ->
      Pc_trace.decoder_finish d);
  (* finish mid-record: truncated varint *)
  let s = bytes_of_events [ Pc_trace.Block { start = 0x123456; insns = 7 } ] in
  let d = Pc_trace.decoder () in
  Pc_trace.decoder_feed d ~len:(String.length s - 1) s (fun ~asid:_ _ -> ());
  Alcotest.check_raises "finish mid-record"
    (Pc_trace.Corrupt "truncated varint") (fun () -> Pc_trace.decoder_finish d);
  (* empty stream *)
  let d = Pc_trace.decoder () in
  Alcotest.check_raises "empty stream" (Pc_trace.Corrupt "truncated header")
    (fun () -> Pc_trace.decoder_finish d)

(* ---------------- non-seekable trace I/O ---------------- *)

(* the satellite-1 regression: a PCTR2 stream arriving through a FIFO —
   where in_channel_length cannot work — must read and decode exactly
   like the same bytes in a regular file *)
let test_read_all_fifo () =
  let events =
    List.init 64 (fun i -> Pc_trace.Block { start = 0x1000 + (8 * (i mod 5)); insns = 2 })
  in
  let s = bytes_of_events ~format:Pc_trace.V2 events in
  let fifo = Filename.temp_file "tea_test_fifo" ".trc" in
  Sys.remove fifo;
  Unix.mkfifo fifo 0o600;
  Fun.protect ~finally:(fun () -> try Sys.remove fifo with Sys_error _ -> ())
  @@ fun () ->
  let writer =
    Domain.spawn (fun () ->
        let oc = open_out_bin fifo in
        output_string oc s;
        close_out oc)
  in
  let got = Pc_trace.read_all fifo in
  Domain.join writer;
  check Alcotest.string "fifo bytes == file bytes" s got;
  check Alcotest.int "decodes" (List.length events)
    (List.length (stamped_of_bytes got))

(* ---------------- the daemon ---------------- *)

let block_at addr = Block.make Block.Branch [ (addr, I.Jmp (I.Abs 0)) ]

let t1 =
  Trace.linear ~id:0 ~kind:"test" [ block_at 0x100; block_at 0x200; block_at 0x300 ]

let t2 = Trace.linear ~id:1 ~kind:"test" [ block_at 0x400; block_at 0x300 ]

let fixture_packed () = Packed.freeze (Builder.build [ t1; t2 ])

(* a repacked+fused variant tuned on the fixture's own hot loop *)
let fixture_tuned () =
  let packed = fixture_packed () in
  let starts =
    Array.init 60 (fun i ->
        List.nth [ 0x100; 0x200; 0x300; 0x400; 0x300 ] (i mod 5))
  in
  let packed =
    Tea_opt.Repack.repack packed
      (Tea_opt.Repack.collect packed starts ~len:(Array.length starts))
  in
  let prof = Tea_opt.Repack.collect packed starts ~len:(Array.length starts) in
  Tea_opt.Fuse.fuse ~profile:prof packed

let sock_path () =
  let p = Filename.temp_file "tea_test_serve" ".sock" in
  Sys.remove p;
  p

(* offline reference for one session's bytes: the whole-file decode path
   through a fresh Multi_replayer over a dup of the same image *)
let offline_of_bytes image s =
  with_tmp @@ fun path ->
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  let m =
    Multi.replay_events (fun _ -> Replayer.create_packed (Packed.dup image)) path
  in
  Profile.merge_all (List.map snd (Multi.snapshots m))

(* Run a daemon over [streams] (raw trace bytes), all sessions open and
   interleaved concurrently from this domain in [chunk]-byte data frames,
   plus one mid-stream disconnect per element of [aborts] (a prefix of
   bytes sent with no end-of-stream frame). Returns the fleet profile,
   the daemon's own offline differential, and each session's reply. *)
let serve_sessions ~jobs ~image ?(chunk = 5) ?(aborts = []) streams =
  let n = List.length streams + List.length aborts in
  let srv =
    Server.create ~offline_check:true ~jobs ~image
      (Frame.Unix_sock (sock_path ()))
  in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run ~until_sessions:n srv) in
  let fds = List.map (fun _ -> Frame.connect (Server.addr srv)) streams in
  let abort_fds = List.map (fun _ -> Frame.connect (Server.addr srv)) aborts in
  (* interleave: one chunk per session per lap, so all sessions are
     mid-stream at the server simultaneously, with frames splitting
     records (and the magic) at arbitrary byte offsets *)
  let offs = Array.make (List.length streams) 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iteri
      (fun i (fd, s) ->
        let len = String.length s in
        if offs.(i) < len then begin
          let k = min chunk (len - offs.(i)) in
          Frame.send fd Frame.tag_data (String.sub s offs.(i) k);
          offs.(i) <- offs.(i) + k;
          progressed := true
        end)
      (List.combine fds streams)
  done;
  (* the disconnects: a prefix, then a close with no end frame *)
  List.iter2
    (fun fd s ->
      let k = min 40 (String.length s) in
      if k > 0 then Frame.send fd Frame.tag_data (String.sub s 0 k);
      Unix.close fd)
    abort_fds aborts;
  List.iter (fun fd -> Frame.send fd Frame.tag_end "") fds;
  let replies =
    List.map
      (fun fd ->
        match Frame.recv fd with
        | Some f when f.Frame.tag = Frame.tag_profile ->
            Frame.decode_profile f.Frame.payload
        | Some f -> Alcotest.failf "unexpected reply tag %C" f.Frame.tag
        | None -> Alcotest.fail "server closed without a reply")
      fds
  in
  List.iter Unix.close fds;
  Domain.join driver;
  check Alcotest.int "completed" (List.length streams) (Server.completed srv);
  check Alcotest.int "disconnected" (List.length aborts)
    (Server.disconnected srv);
  (Server.fleet_profile srv, Server.offline_profile srv, replies)

let mixed_streams () =
  (* v2 block-only sessions and v3 event sessions, some hitting the
     fixture's traces, some foreign addresses *)
  let v2 hot =
    bytes_of_events ~format:Pc_trace.V2
      (List.init 40 (fun i ->
           Pc_trace.Block
             { start = List.nth hot (i mod List.length hot); insns = 1 }))
  in
  let v3 =
    bytes_of_events
      [ Pc_trace.Block { start = 0x100; insns = 1 };
        Pc_trace.Switch { asid = 2 };
        Pc_trace.Block { start = 0x400; insns = 1 };
        Pc_trace.Block { start = 0x300; insns = 1 };
        Pc_trace.Interrupt;
        Pc_trace.Switch { asid = 0 };
        Pc_trace.Block { start = 0x200; insns = 1 };
        Pc_trace.Invalidate { asid = 2 };
        Pc_trace.Switch { asid = 2 };
        Pc_trace.Block { start = 0x400; insns = 1 } ]
  in
  [ v2 [ 0x100; 0x200; 0x300 ];
    v2 [ 0x400; 0x300 ];
    v2 [ 0x100; 0x900; 0x200 ];
    v2 [ 0x5000 ];
    v3;
    v3;
    v2 [ 0x300; 0x400 ];
    v3 ]

let test_daemon_gate () =
  (* the acceptance gate: >= 8 concurrent sessions, mixed formats, one
     mid-stream disconnect, fleet == offline at jobs 1/2/4 — on the flat
     and the repacked+fused image *)
  List.iter
    (fun image_of ->
      let streams = mixed_streams () in
      let expect =
        Profile.merge_all (List.map (offline_of_bytes (image_of ())) streams)
      in
      List.iter
        (fun jobs ->
          let fleet, offline, replies =
            serve_sessions ~jobs ~image:(image_of ()) ~aborts:[ List.hd streams ]
              streams
          in
          check profile
            (Printf.sprintf "fleet == offline (jobs %d)" jobs)
            offline fleet;
          check profile
            (Printf.sprintf "fleet == independent reference (jobs %d)" jobs)
            expect fleet;
          (* each session's reply is its own stream's offline profile *)
          List.iter2
            (fun reply s ->
              check profile "session reply == per-stream offline"
                (offline_of_bytes (image_of ()) s)
                reply)
            replies streams)
        [ 1; 2; 4 ])
    [ fixture_packed; fixture_tuned ]

let test_daemon_disconnect_isolation () =
  (* the same streams with and without a rude client: identical fleet *)
  let streams = mixed_streams () in
  let image = fixture_packed () in
  let clean, _, _ = serve_sessions ~jobs:2 ~image streams in
  let image = fixture_packed () in
  let rude, _, _ =
    serve_sessions ~jobs:2 ~image
      ~aborts:[ List.hd streams; List.nth streams 4 ]
      streams
  in
  check profile "disconnects do not perturb the fleet" clean rude

let test_daemon_client_module () =
  (* the Client convenience wrapper against a live daemon *)
  let image = fixture_packed () in
  let srv =
    Server.create ~jobs:2 ~image (Frame.Unix_sock (sock_path ()))
  in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let driver = Domain.spawn (fun () -> Server.run ~until_sessions:2 srv) in
  let s = List.hd (mixed_streams ()) in
  let p = Client.replay_string ~chunk:3 (Server.addr srv) s in
  check profile "client profile" (offline_of_bytes image s) p;
  (* a corrupt stream gets an error reply, not a hang *)
  (match Client.replay_string (Server.addr srv) "FOOBARBAZ" with
  | _ -> Alcotest.fail "corrupt stream must be rejected"
  | exception Client.Server_error _ -> ());
  Domain.join driver;
  check Alcotest.int "one completed" 1 (Server.completed srv);
  check Alcotest.int "one rejected" 1 (Server.disconnected srv)

let prop_daemon_random_streams =
  (* satellite 4's differential: random event streams through concurrent
     sessions vs the sequential offline merge, cycling jobs 1/2/4 *)
  QCheck.Test.make ~name:"daemon fleet == offline on random streams"
    ~count:10
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 4) gen_events)
           (oneofl [ 1; 2; 4 ])))
    (fun (sessions, jobs) ->
      let streams = List.map (fun evs -> bytes_of_events evs) sessions in
      let image = fixture_packed () in
      let expect =
        Profile.merge_all (List.map (offline_of_bytes image) streams)
      in
      let fleet, offline, _ = serve_sessions ~jobs ~image streams in
      Profile.equal fleet offline && Profile.equal fleet expect)

let () =
  Alcotest.run "tea_serve"
    [
      ( "frame",
        [
          Alcotest.test_case "round-trip any chunking" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "hostile length" `Quick test_frame_hostile_length;
          Alcotest.test_case "fd send/recv" `Quick test_frame_fd_helpers;
          qtest prop_profile_codec;
        ] );
      ( "decoder",
        [
          qtest prop_decoder_equals_fold;
          Alcotest.test_case "v1/v2 streams" `Quick test_decoder_v1_v2;
          Alcotest.test_case "errors" `Quick test_decoder_errors;
        ] );
      ( "io",
        [ Alcotest.test_case "read_all through a FIFO" `Quick test_read_all_fifo ] );
      ( "daemon",
        [
          Alcotest.test_case "gate: fleet == offline" `Quick test_daemon_gate;
          Alcotest.test_case "disconnect isolation" `Quick
            test_daemon_disconnect_isolation;
          Alcotest.test_case "client module" `Quick test_daemon_client_module;
          qtest prop_daemon_random_streams;
        ] );
    ]
