(* Telemetry layer: the snapshot merge algebra (qcheck — associative,
   commutative, empty-neutral), parallel-vs-sequential probe equality on
   the sharded replayer, span nesting validation, and a golden for the
   `--metrics` text rendering of a fixed listscan run. *)

module Metrics = Tea_telemetry.Metrics
module Span = Tea_telemetry.Span
module Probe = Tea_telemetry.Probe

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.check

(* ---------------- merge algebra ---------------- *)

(* Random snapshots built through the public API, with a tiny name pool so
   merges actually collide on keys. *)
let gen_snapshot =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "lookup.hit"; "scan.len" ] in
  let op =
    oneof
      [
        map2 (fun n v -> `Count (n, v)) name (int_range 1 100);
        map2 (fun n v -> `Observe (n, v)) name (int_range (-1) 5000);
      ]
  in
  let* ops = list_size (int_bound 25) op in
  let m = Metrics.create () in
  List.iter
    (function
      | `Count (n, v) -> Metrics.count m n v
      | `Observe (n, v) -> Metrics.observe_value m n v)
    ops;
  return (Metrics.snapshot m)

let arb_snapshot = QCheck.make gen_snapshot

let merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:300
    (QCheck.triple arb_snapshot arb_snapshot arb_snapshot)
    (fun (a, b, c) ->
      Metrics.equal
        (Metrics.merge (Metrics.merge a b) c)
        (Metrics.merge a (Metrics.merge b c)))

let merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:300
    (QCheck.pair arb_snapshot arb_snapshot)
    (fun (a, b) -> Metrics.equal (Metrics.merge a b) (Metrics.merge b a))

let merge_empty_neutral =
  QCheck.Test.make ~name:"empty is the merge identity" ~count:300 arb_snapshot
    (fun a ->
      Metrics.equal (Metrics.merge Metrics.empty a) a
      && Metrics.equal (Metrics.merge a Metrics.empty) a)

(* merge_all over a random partition of one op stream = the unpartitioned
   snapshot: exactly the per-domain-registry merge the probes rely on. *)
let merge_partition =
  QCheck.Test.make ~name:"merge of a partition = the whole" ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 1 50)))
    (fun ops ->
      let names = [| "a"; "b"; "c"; "d" |] in
      let whole = Metrics.create () in
      let parts = Array.init 3 (fun _ -> Metrics.create ()) in
      List.iteri
        (fun i (n, v) ->
          Metrics.count whole names.(n) v;
          Metrics.observe_value whole names.(n) v;
          let p = parts.(i mod 3) in
          Metrics.count p names.(n) v;
          Metrics.observe_value p names.(n) v)
        ops;
      Metrics.equal (Metrics.snapshot whole)
        (Metrics.merge_all
           (Array.to_list (Array.map Metrics.snapshot parts))))

let test_buckets () =
  check Alcotest.int "bucket of 0" 0 (Metrics.bucket_of 0);
  check Alcotest.int "bucket of -3" 0 (Metrics.bucket_of (-3));
  check Alcotest.int "bucket of 1" 1 (Metrics.bucket_of 1);
  check Alcotest.int "bucket of 2" 2 (Metrics.bucket_of 2);
  check Alcotest.int "bucket of 3" 2 (Metrics.bucket_of 3);
  check Alcotest.int "bucket of 4" 3 (Metrics.bucket_of 4);
  check Alcotest.string "label of 2" "[2,4)" (Metrics.bucket_label 2);
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 1; 1; 3; 100 ];
  let s = Metrics.snapshot m in
  let hs = Option.get (Metrics.find_histogram s "h") in
  check Alcotest.int "count" 4 hs.Metrics.hs_count;
  check Alcotest.int "sum" 105 hs.Metrics.hs_sum;
  check
    Alcotest.(list (pair int int))
    "buckets" [ (1, 2); (2, 1); (7, 1) ] hs.Metrics.hs_buckets

(* ---------------- probes across domains ---------------- *)

let listscan_fixture () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let packed = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_telemetry" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  (packed, path)

let replay_snapshot packed path jobs =
  Probe.install ();
  Fun.protect
    ~finally:(fun () -> if Probe.enabled () then ignore (Probe.uninstall ()))
    (fun () ->
      let profile, _ =
        Tea_parallel.Pool.with_pool ~jobs (fun pool ->
            Tea_parallel.Shard.replay_pc_trace pool packed path)
      in
      (profile, Probe.uninstall ()))

(* The acceptance bar: every probe counter and histogram of a --jobs 4 run
   merges to exactly the --jobs 1 values (shard stitching replays every
   step once from the true entry state). *)
let test_parallel_probe_equality () =
  let packed, path = listscan_fixture () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let p1, s1 = replay_snapshot packed path 1 in
      let p4, s4 = replay_snapshot packed path 4 in
      check Alcotest.bool "profiles equal" true
        (Tea_parallel.Profile.equal p1 p4);
      check Alcotest.bool "snapshots non-empty" false
        (Metrics.equal s1 Metrics.empty);
      if not (Metrics.equal s1 s4) then
        Alcotest.failf "probe snapshots differ:\n-- jobs 1 --\n%s-- jobs 4 --\n%s"
          (Tea_report.Stats.render s1) (Tea_report.Stats.render s4))

let test_disabled_is_noop () =
  check Alcotest.bool "disabled" false (Probe.enabled ());
  Probe.count "x" 3;
  Probe.observe "y" 7;
  check Alcotest.bool "metrics absent" true (Probe.metrics () = None);
  check Alcotest.bool "snapshot empty" true
    (Metrics.equal (Probe.snapshot ()) Metrics.empty);
  check Alcotest.int "with_span passes through" 42
    (Probe.with_span "s" (fun () -> 42))

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  let sink = Span.create () in
  let r =
    Span.with_span sink "root" (fun () ->
        Span.with_span sink "child1" (fun () -> ());
        Span.with_span sink ~args:[ ("k", "v") ] "child2" (fun () -> 17))
  in
  check Alcotest.int "result" 17 r;
  (match Span.validate sink with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  let evs = Span.events sink in
  check
    Alcotest.(list string)
    "order: parents before children" [ "root"; "child1"; "child2" ]
    (List.map (fun e -> e.Span.e_name) evs);
  let root = List.hd evs in
  List.iter
    (fun e ->
      check Alcotest.bool (e.Span.e_name ^ " inside root") true
        (e.Span.e_ts >= root.Span.e_ts
        && e.Span.e_ts +. e.Span.e_dur <= root.Span.e_ts +. root.Span.e_dur))
    (List.tl evs);
  let json = Span.to_chrome_json sink in
  check Alcotest.bool "chrome wrapper" true
    (String.length json > 16 && String.sub json 0 16 = {|{"traceEvents":[|});
  check Alcotest.int "jsonl lines" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' (Span.to_jsonl sink))))

let test_span_unbalanced_detected () =
  let sink = Span.create () in
  let s = Span.enter sink "outer" in
  let inner = Span.enter sink "inner" in
  Span.exit sink inner;
  Span.exit sink s;
  check Alcotest.bool "balanced validates" true (Span.validate sink = Ok ());
  (* exiting out of order must be caught; the sleeps separate the
     timestamps so the overrun is visible at gettimeofday resolution *)
  let bad = Span.create () in
  let a = Span.enter bad "a" in
  Unix.sleepf 0.002;
  let b = Span.enter bad "b" in
  Unix.sleepf 0.002;
  Span.exit bad a;
  Unix.sleepf 0.002;
  Span.exit bad b;
  check Alcotest.bool "crossed spans rejected" true (Span.validate bad <> Ok ())

(* ---------------- --metrics golden ---------------- *)

let update_dir = Sys.getenv_opt "TEA_GOLDEN_UPDATE"

let golden_root =
  if Sys.file_exists "goldens" then "goldens" else Filename.concat "test" "goldens"

let check_golden_file name actual =
  match update_dir with
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc actual;
      close_out oc;
      Printf.printf "updated %s (%d bytes)\n%!" path (String.length actual)
  | None ->
      let path = Filename.concat golden_root name in
      let expected =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error _ ->
          Alcotest.failf
            "missing golden %s - regenerate with TEA_GOLDEN_UPDATE" path
      in
      if expected <> actual then begin
        let got = Filename.temp_file "tea_golden" ".got" in
        let oc = open_out_bin got in
        output_string oc actual;
        close_out oc;
        Alcotest.failf "golden mismatch for %s (actual output in %s)" name got
      end

(* The text dump `tea_tool replay micro:listscan --metrics` produces:
   record under the DBT, replay through the Pin-like frontend, render the
   merged probe snapshot. Every counter on that path is simulated-time or
   event-count — no wall clock — so the rendering is frozen byte-for-byte. *)
let test_metrics_golden () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  Probe.install ();
  let snap =
    Fun.protect
      ~finally:(fun () -> if Probe.enabled () then ignore (Probe.uninstall ()))
      (fun () ->
        let r = Tea_dbt.Stardbt.record ~strategy image in
        let traces = Tea_traces.Trace_set.to_list r.Tea_dbt.Stardbt.set in
        let _ = Tea_pinsim.Pintool_replay.replay ~traces image in
        Probe.uninstall ())
  in
  check_golden_file "metrics_listscan.txt"
    (Tea_report.Stats.render ~title:"telemetry" snap)

let () =
  Alcotest.run "telemetry"
    [
      ( "merge algebra",
        [
          qtest merge_associative;
          qtest merge_commutative;
          qtest merge_empty_neutral;
          qtest merge_partition;
          Alcotest.test_case "log2 buckets" `Quick test_buckets;
        ] );
      ( "probes",
        [
          Alcotest.test_case "disabled probes are no-ops" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "jobs 4 merges to jobs 1, counter for counter"
            `Quick test_parallel_probe_equality;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and export" `Quick test_span_nesting;
          Alcotest.test_case "validation catches crossed spans" `Quick
            test_span_unbalanced_detected;
        ] );
      ( "golden",
        [ Alcotest.test_case "--metrics rendering" `Quick test_metrics_golden ] );
    ]
